package puppet

// Expr is a Puppet expression.
type Expr interface {
	isExpr()
	Position() Pos
}

// StrExpr is a string literal, possibly with interpolation parts.
type StrExpr struct {
	Parts []StringPart
	Pos   Pos
}

// NumExpr is a numeric literal.
type NumExpr struct {
	Text string
	Pos  Pos
}

// BoolExpr is true or false.
type BoolExpr struct {
	V   bool
	Pos Pos
}

// UndefExpr is the undef literal.
type UndefExpr struct{ Pos Pos }

// VarExpr references a variable.
type VarExpr struct {
	Name string
	Pos  Pos
}

// ArrayExpr is [e1, e2, ...].
type ArrayExpr struct {
	Elems []Expr
	Pos   Pos
}

// HashPair is one k => v entry of a hash.
type HashPair struct {
	Key, Value Expr
}

// HashExpr is {k => v, ...}.
type HashExpr struct {
	Pairs []HashPair
	Pos   Pos
}

// RefExpr is a resource reference like Package['vim'] (one or more titles).
type RefExpr struct {
	Type   string // normalized lowercase resource type name
	Titles []Expr
	Pos    Pos
}

// IndexExpr is subscripting: $hash['key'] or $array[0].
type IndexExpr struct {
	X     Expr
	Index Expr
	Pos   Pos
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpEq BinOp = iota
	OpNeq
	OpLt
	OpGt
	OpLe
	OpGe
	OpAnd
	OpOr
	OpIn
)

// BinExpr is a binary operation.
type BinExpr struct {
	Op   BinOp
	L, R Expr
	Pos  Pos
}

// NotExpr is !x.
type NotExpr struct {
	X   Expr
	Pos Pos
}

// SelCase is one arm of a selector; Match == nil is the default arm.
type SelCase struct {
	Match Expr
	Value Expr
}

// SelectorExpr is cond ? { m1 => v1, default => v2 }.
type SelectorExpr struct {
	Cond  Expr
	Cases []SelCase
	Pos   Pos
}

// DefinedExpr is defined(Type['title']).
type DefinedExpr struct {
	Ref RefExpr
	Pos Pos
}

func (e StrExpr) isExpr()      {}
func (e NumExpr) isExpr()      {}
func (e BoolExpr) isExpr()     {}
func (e UndefExpr) isExpr()    {}
func (e VarExpr) isExpr()      {}
func (e ArrayExpr) isExpr()    {}
func (e HashExpr) isExpr()     {}
func (e RefExpr) isExpr()      {}
func (e IndexExpr) isExpr()    {}
func (e BinExpr) isExpr()      {}
func (e NotExpr) isExpr()      {}
func (e SelectorExpr) isExpr() {}
func (e DefinedExpr) isExpr()  {}

// Position implements Expr.
func (e StrExpr) Position() Pos      { return e.Pos }
func (e NumExpr) Position() Pos      { return e.Pos }
func (e BoolExpr) Position() Pos     { return e.Pos }
func (e UndefExpr) Position() Pos    { return e.Pos }
func (e VarExpr) Position() Pos      { return e.Pos }
func (e ArrayExpr) Position() Pos    { return e.Pos }
func (e HashExpr) Position() Pos     { return e.Pos }
func (e RefExpr) Position() Pos      { return e.Pos }
func (e IndexExpr) Position() Pos    { return e.Pos }
func (e BinExpr) Position() Pos      { return e.Pos }
func (e NotExpr) Position() Pos      { return e.Pos }
func (e SelectorExpr) Position() Pos { return e.Pos }
func (e DefinedExpr) Position() Pos  { return e.Pos }

// Stmt is a Puppet statement.
type Stmt interface {
	isStmt()
	Position() Pos
}

// Attr is one attribute assignment in a resource body or defaults block.
type Attr struct {
	Name  string
	Value Expr
	Pos   Pos
}

// ResourceBody is one title: attrs... body of a resource declaration.
type ResourceBody struct {
	Title Expr
	Attrs []Attr
}

// ResourceDecl declares one or more resources of a type (possibly virtual,
// possibly "class" for class resource syntax).
type ResourceDecl struct {
	Virtual bool
	Type    string
	Bodies  []ResourceBody
	Pos     Pos
}

// DefaultsDecl is a resource-defaults block: File { mode => '0644' }.
type DefaultsDecl struct {
	Type  string
	Attrs []Attr
	Pos   Pos
}

// Param is a class/define parameter with optional default.
type Param struct {
	Name    string
	Default Expr // nil when required
}

// DefineDecl declares a user-defined resource type.
type DefineDecl struct {
	Name   string
	Params []Param
	Body   []Stmt
	Pos    Pos
}

// ClassDecl declares a class.
type ClassDecl struct {
	Name   string
	Params []Param
	Body   []Stmt
	Pos    Pos
}

// IncludeStmt includes one or more classes.
type IncludeStmt struct {
	Names []string
	Pos   Pos
}

// AssignStmt assigns a variable.
type AssignStmt struct {
	Name  string
	Value Expr
	Pos   Pos
}

// IfStmt is if/elsif/else (elsif chains are nested in Else).
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// CaseClause is one arm of a case statement; Matches == nil is default.
type CaseClause struct {
	Matches []Expr
	Body    []Stmt
}

// CaseStmt is a case statement.
type CaseStmt struct {
	Cond  Expr
	Cases []CaseClause
	Pos   Pos
}

// ChainOp is -> or ~>.
type ChainOp int

// Chaining operators; notify edges are dependency edges with refresh
// semantics, which the analysis treats identically (section 3.1).
const (
	ChainBefore ChainOp = iota // ->
	ChainNotify                // ~>
)

// ChainElem is one operand of a chaining expression: either a resource
// reference or an inline resource declaration
// (package { 'ntp': } -> service { 'ntp': }).
type ChainElem struct {
	Ref  *RefExpr
	Decl *ResourceDecl
}

// ChainStmt is elem -> elem -> ... (n elems, n-1 ops).
type ChainStmt struct {
	Elems []ChainElem
	Ops   []ChainOp
	Pos   Pos
}

// NodeDecl is a node block: node 'web01', 'web02' { ... }. The special
// name "default" matches when no other node block does.
type NodeDecl struct {
	Names []string
	Body  []Stmt
	Pos   Pos
}

// RealizeStmt realizes virtual resources: realize User['alice'].
type RealizeStmt struct {
	Refs []RefExpr
	Pos  Pos
}

// FailStmt aborts evaluation with a message: fail('unsupported OS').
type FailStmt struct {
	Message Expr
	Pos     Pos
}

// CollQuery is the query of a collector; nil Query collects everything
// (realizing all virtual resources of the type).
type CollQuery struct {
	Attr  string
	Neq   bool // true for !=, false for ==
	Value Expr
}

// CollectorStmt is Type<| query |> { overrides }.
type CollectorStmt struct {
	Type      string
	Query     *CollQuery
	Overrides []Attr
	Pos       Pos
}

func (s ResourceDecl) isStmt()  {}
func (s DefaultsDecl) isStmt()  {}
func (s DefineDecl) isStmt()    {}
func (s ClassDecl) isStmt()     {}
func (s IncludeStmt) isStmt()   {}
func (s AssignStmt) isStmt()    {}
func (s IfStmt) isStmt()        {}
func (s CaseStmt) isStmt()      {}
func (s ChainStmt) isStmt()     {}
func (s CollectorStmt) isStmt() {}
func (s NodeDecl) isStmt()      {}
func (s RealizeStmt) isStmt()   {}
func (s FailStmt) isStmt()      {}

// Position implements Stmt.
func (s ResourceDecl) Position() Pos  { return s.Pos }
func (s DefaultsDecl) Position() Pos  { return s.Pos }
func (s DefineDecl) Position() Pos    { return s.Pos }
func (s ClassDecl) Position() Pos     { return s.Pos }
func (s IncludeStmt) Position() Pos   { return s.Pos }
func (s AssignStmt) Position() Pos    { return s.Pos }
func (s IfStmt) Position() Pos        { return s.Pos }
func (s CaseStmt) Position() Pos      { return s.Pos }
func (s ChainStmt) Position() Pos     { return s.Pos }
func (s CollectorStmt) Position() Pos { return s.Pos }
func (s NodeDecl) Position() Pos      { return s.Pos }
func (s RealizeStmt) Position() Pos   { return s.Pos }
func (s FailStmt) Position() Pos      { return s.Pos }
