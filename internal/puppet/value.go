package puppet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a runtime value of the Puppet evaluator.
type Value interface{ isValue() }

// StrV is a string value.
type StrV string

// NumV is a numeric value.
type NumV float64

// BoolV is a boolean value.
type BoolV bool

// UndefV is undef.
type UndefV struct{}

// ArrV is an array value.
type ArrV []Value

// HashEntry is one key/value pair of a hash value.
type HashEntry struct {
	Key   Value
	Value Value
}

// HashV is a hash value (insertion-ordered).
type HashV []HashEntry

// RefV is a resource reference value (type is normalized lowercase).
type RefV struct {
	Type  string
	Title string
}

func (StrV) isValue()   {}
func (NumV) isValue()   {}
func (BoolV) isValue()  {}
func (UndefV) isValue() {}
func (ArrV) isValue()   {}
func (HashV) isValue()  {}
func (RefV) isValue()   {}

// ValueString renders a value the way Puppet would interpolate it.
func ValueString(v Value) string {
	switch v := v.(type) {
	case StrV:
		return string(v)
	case NumV:
		if v == NumV(int64(v)) {
			return strconv.FormatInt(int64(v), 10)
		}
		return strconv.FormatFloat(float64(v), 'g', -1, 64)
	case BoolV:
		if v {
			return "true"
		}
		return "false"
	case UndefV:
		return ""
	case ArrV:
		parts := make([]string, len(v))
		for i, e := range v {
			parts[i] = ValueString(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case HashV:
		parts := make([]string, len(v))
		for i, e := range v {
			parts[i] = ValueString(e.Key) + " => " + ValueString(e.Value)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case RefV:
		return titleCase(v.Type) + "[" + v.Title + "]"
	default:
		return fmt.Sprint(v)
	}
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// Truthy implements Puppet truthiness: false and undef are false,
// everything else (including the empty string) is true.
func Truthy(v Value) bool {
	switch v := v.(type) {
	case BoolV:
		return bool(v)
	case UndefV:
		return false
	default:
		return true
	}
}

// ValueEq implements Puppet ==: strings compare case-insensitively,
// numbers numerically (including numeric strings), arrays and hashes
// element-wise.
func ValueEq(a, b Value) bool {
	if na, aok := toNum(a); aok {
		if nb, bok := toNum(b); bok {
			return na == nb
		}
	}
	switch a := a.(type) {
	case StrV:
		if b, ok := b.(StrV); ok {
			return strings.EqualFold(string(a), string(b))
		}
	case BoolV:
		if b, ok := b.(BoolV); ok {
			return a == b
		}
	case UndefV:
		_, ok := b.(UndefV)
		return ok
	case ArrV:
		b, ok := b.(ArrV)
		if !ok || len(a) != len(b) {
			return false
		}
		for i := range a {
			if !ValueEq(a[i], b[i]) {
				return false
			}
		}
		return true
	case HashV:
		b, ok := b.(HashV)
		if !ok || len(a) != len(b) {
			return false
		}
		// Order-insensitive comparison by rendered key.
		am, bm := hashByKey(a), hashByKey(b)
		if len(am) != len(bm) {
			return false
		}
		keys := make([]string, 0, len(am))
		for k := range am {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv, ok := bm[k]
			if !ok || !ValueEq(am[k], bv) {
				return false
			}
		}
		return true
	case RefV:
		if b, ok := b.(RefV); ok {
			return a.Type == b.Type && strings.EqualFold(a.Title, b.Title)
		}
	}
	return false
}

func hashByKey(h HashV) map[string]Value {
	out := make(map[string]Value, len(h))
	for _, e := range h {
		out[ValueString(e.Key)] = e.Value
	}
	return out
}

// toNum converts numeric values and numeric strings.
func toNum(v Value) (float64, bool) {
	switch v := v.(type) {
	case NumV:
		return float64(v), true
	case StrV:
		f, err := strconv.ParseFloat(strings.TrimSpace(string(v)), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// compareNum compares numerically for < > <= >=; both operands must be
// numeric (or numeric strings).
func compareNum(a, b Value) (float64, float64, bool) {
	na, aok := toNum(a)
	nb, bok := toNum(b)
	return na, nb, aok && bok
}
