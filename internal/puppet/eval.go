package puppet

import (
	"fmt"
	"strings"
)

// Config parameterizes evaluation. Facts are predefined top-scope
// variables such as operatingsystem; Rehearsal sets them from the
// --platform flag (section 8: the analysis is platform-dependent).
// NodeName selects which node block applies (default "default").
type Config struct {
	Facts    map[string]Value
	NodeName string
}

// maxDepth bounds define/class instantiation recursion.
const maxDepth = 100

// Evaluate runs a parsed manifest and produces its resource catalog.
func Evaluate(stmts []Stmt, cfg Config) (*Catalog, error) {
	nodeName := strings.ToLower(cfg.NodeName)
	if nodeName == "" {
		nodeName = "default"
	}
	ev := &evaluator{
		cat:      newCatalog(),
		defines:  make(map[string]DefineDecl),
		classes:  make(map[string]ClassDecl),
		included: make(map[string]bool),
		facts:    cfg.Facts,
		nodeName: nodeName,
	}
	if err := ev.collectDecls(stmts); err != nil {
		return nil, err
	}
	top := &frame{vars: make(map[string]Value), defaults: make(map[string]map[string]Value)}
	ev.top = top
	if err := ev.stmts(stmts, top); err != nil {
		return nil, err
	}
	if err := ev.applyRealizes(); err != nil {
		return nil, err
	}
	if err := ev.applyCollectors(); err != nil {
		return nil, err
	}
	return ev.cat, nil
}

// applyRealizes resolves realize statements after the whole manifest has
// been evaluated, since the virtual resources may be declared later.
func (ev *evaluator) applyRealizes() error {
	for _, req := range ev.toRealize {
		r := ev.cat.Lookup(req.ref.Type, req.ref.Title)
		if r == nil {
			return errf(req.pos, "realize: %s is not declared", ValueString(req.ref))
		}
		r.Virtual = false
	}
	return nil
}

// EvaluateSource parses and evaluates a manifest.
func EvaluateSource(src string, cfg Config) (*Catalog, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Evaluate(stmts, cfg)
}

// frame is a lexical scope with resource defaults and containment context.
type frame struct {
	parent    *frame
	vars      map[string]Value
	defaults  map[string]map[string]Value
	container []string
	stage     string
}

func (f *frame) lookup(name string) (Value, bool) {
	// ::name forces top-scope lookup.
	top := strings.HasPrefix(name, "::")
	name = strings.TrimPrefix(name, "::")
	for s := f; s != nil; s = s.parent {
		if top && s.parent != nil {
			continue
		}
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

type pendingCollector struct {
	typ       string
	query     *evaluatedQuery
	overrides map[string]Value
	pos       Pos
}

type evaluatedQuery struct {
	attr  string
	neq   bool
	value Value
}

type realizeReq struct {
	ref RefV
	pos Pos
}

type evaluator struct {
	cat          *Catalog
	defines      map[string]DefineDecl
	classes      map[string]ClassDecl
	included     map[string]bool
	collectors   []pendingCollector
	toRealize    []realizeReq
	facts        map[string]Value
	top          *frame
	depth        int
	nodeName     string
	hasExactNode bool
}

// collectDecls registers class and define declarations, recursing into
// conditional bodies.
func (ev *evaluator) collectDecls(stmts []Stmt) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case DefineDecl:
			if _, dup := ev.defines[s.Name]; dup {
				return errf(s.Pos, "duplicate definition of resource type %q", s.Name)
			}
			if _, dup := ev.classes[s.Name]; dup {
				return errf(s.Pos, "%q is already a class", s.Name)
			}
			ev.defines[s.Name] = s
			if err := ev.collectDecls(s.Body); err != nil {
				return err
			}
		case ClassDecl:
			if _, dup := ev.classes[s.Name]; dup {
				return errf(s.Pos, "duplicate definition of class %q", s.Name)
			}
			if _, dup := ev.defines[s.Name]; dup {
				return errf(s.Pos, "%q is already a defined type", s.Name)
			}
			ev.classes[s.Name] = s
			if err := ev.collectDecls(s.Body); err != nil {
				return err
			}
		case IfStmt:
			if err := ev.collectDecls(s.Then); err != nil {
				return err
			}
			if err := ev.collectDecls(s.Else); err != nil {
				return err
			}
		case CaseStmt:
			for _, c := range s.Cases {
				if err := ev.collectDecls(c.Body); err != nil {
					return err
				}
			}
		case NodeDecl:
			for _, n := range s.Names {
				if n == ev.nodeName && n != "default" {
					ev.hasExactNode = true
				}
			}
			if err := ev.collectDecls(s.Body); err != nil {
				return err
			}
		}
	}
	return nil
}

func (ev *evaluator) stmts(stmts []Stmt, f *frame) error {
	for _, s := range stmts {
		if err := ev.stmt(s, f); err != nil {
			return err
		}
	}
	return nil
}

func (ev *evaluator) stmt(s Stmt, f *frame) error {
	switch s := s.(type) {
	case DefineDecl, ClassDecl:
		return nil // registered in collectDecls
	case ResourceDecl:
		return ev.resourceDecl(s, f)
	case DefaultsDecl:
		attrs, err := ev.attrValues(s.Attrs, f)
		if err != nil {
			return err
		}
		d := f.defaults[s.Type]
		if d == nil {
			d = make(map[string]Value)
			f.defaults[s.Type] = d
		}
		for k, v := range attrs {
			d[k] = v
		}
		return nil
	case IncludeStmt:
		for _, name := range s.Names {
			if err := ev.includeClass(name, nil, s.Pos); err != nil {
				return err
			}
		}
		return nil
	case AssignStmt:
		if _, exists := f.vars[s.Name]; exists {
			return errf(s.Pos, "cannot reassign variable $%s", s.Name)
		}
		v, err := ev.expr(s.Value, f)
		if err != nil {
			return err
		}
		f.vars[s.Name] = v
		return nil
	case IfStmt:
		cond, err := ev.expr(s.Cond, f)
		if err != nil {
			return err
		}
		if Truthy(cond) {
			return ev.stmts(s.Then, f)
		}
		return ev.stmts(s.Else, f)
	case CaseStmt:
		cond, err := ev.expr(s.Cond, f)
		if err != nil {
			return err
		}
		var defaultBody []Stmt
		for _, c := range s.Cases {
			if c.Matches == nil {
				defaultBody = c.Body
				continue
			}
			for _, m := range c.Matches {
				mv, err := ev.expr(m, f)
				if err != nil {
					return err
				}
				if ValueEq(cond, mv) {
					return ev.stmts(c.Body, f)
				}
			}
		}
		return ev.stmts(defaultBody, f)
	case ChainStmt:
		return ev.chain(s, f)
	case CollectorStmt:
		return ev.collector(s, f)
	case NodeDecl:
		return ev.nodeDecl(s, f)
	case RealizeStmt:
		for _, r := range s.Refs {
			for _, te := range r.Titles {
				v, err := ev.expr(te, f)
				if err != nil {
					return err
				}
				for _, title := range flattenStrings(v) {
					ev.toRealize = append(ev.toRealize, realizeReq{
						ref: RefV{Type: r.Type, Title: title},
						pos: s.Pos,
					})
				}
			}
		}
		return nil
	case FailStmt:
		msg, err := ev.expr(s.Message, f)
		if err != nil {
			return err
		}
		return errf(s.Pos, "fail: %s", ValueString(msg))
	default:
		return errf(s.Position(), "unhandled statement")
	}
}

// nodeDecl evaluates a node block when it matches the configured node
// name: an exact name match, or the "default" block when no exact match
// exists anywhere in the manifest.
func (ev *evaluator) nodeDecl(s NodeDecl, f *frame) error {
	matches := false
	for _, n := range s.Names {
		if n == ev.nodeName {
			matches = true
		}
		if n == "default" && !ev.hasExactNode {
			matches = true
		}
	}
	if !matches {
		return nil
	}
	// Node blocks get their own scope under top, like classes.
	nf := &frame{
		parent:   ev.top,
		vars:     make(map[string]Value),
		defaults: make(map[string]map[string]Value),
	}
	return ev.stmts(s.Body, nf)
}

func (ev *evaluator) chain(s ChainStmt, f *frame) error {
	expandRef := func(r RefExpr) ([]RefV, error) {
		var out []RefV
		for _, t := range r.Titles {
			v, err := ev.expr(t, f)
			if err != nil {
				return nil, err
			}
			for _, title := range flattenStrings(v) {
				out = append(out, RefV{Type: r.Type, Title: title})
			}
		}
		return out, nil
	}
	// An element is either a reference or an inline declaration, which is
	// evaluated here and contributes references to everything it declared.
	elemRefs := func(e ChainElem) ([]RefV, error) {
		if e.Ref != nil {
			return expandRef(*e.Ref)
		}
		decl := *e.Decl
		if err := ev.resourceDecl(decl, f); err != nil {
			return nil, err
		}
		var out []RefV
		for _, body := range decl.Bodies {
			titleVal, err := ev.expr(body.Title, f)
			if err != nil {
				return nil, err
			}
			for _, title := range flattenStrings(titleVal) {
				typ := decl.Type
				if typ == "class" {
					title = strings.ToLower(title)
				}
				out = append(out, RefV{Type: typ, Title: title})
			}
		}
		return out, nil
	}
	prev, err := elemRefs(s.Elems[0])
	if err != nil {
		return err
	}
	for i, op := range s.Ops {
		next, err := elemRefs(s.Elems[i+1])
		if err != nil {
			return err
		}
		kind := DepBefore
		if op == ChainNotify {
			kind = DepNotify
		}
		for _, from := range prev {
			for _, to := range next {
				ev.cat.Deps = append(ev.cat.Deps, Dep{From: from, To: to, Kind: kind, Pos: s.Pos})
			}
		}
		prev = next
	}
	return nil
}

func (ev *evaluator) collector(s CollectorStmt, f *frame) error {
	pc := pendingCollector{typ: s.Type, pos: s.Pos}
	if s.Query != nil {
		v, err := ev.expr(s.Query.Value, f)
		if err != nil {
			return err
		}
		pc.query = &evaluatedQuery{attr: s.Query.Attr, neq: s.Query.Neq, value: v}
	}
	if len(s.Overrides) > 0 {
		attrs, err := ev.attrValues(s.Overrides, f)
		if err != nil {
			return err
		}
		for name := range attrs {
			if isMetaparam(name) {
				return errf(s.Pos, "collector overrides of metaparameter %q are not supported", name)
			}
		}
		pc.overrides = attrs
	}
	ev.collectors = append(ev.collectors, pc)
	return nil
}

// applyCollectors runs queued collectors against the full catalog: they
// are global, non-modular transformations (section 3.1), so they apply
// after everything is declared.
func (ev *evaluator) applyCollectors() error {
	for _, pc := range ev.collectors {
		for _, r := range ev.cat.Resources {
			if r.Type != pc.typ {
				continue
			}
			if pc.query != nil {
				attr, ok := r.Attrs[pc.query.attr]
				if !ok {
					attr = UndefV{}
				}
				match := ValueEq(attr, pc.query.value)
				if pc.query.neq {
					match = !match
				}
				if !match {
					continue
				}
			}
			r.Virtual = false // realize
			for k, v := range pc.overrides {
				r.Attrs[k] = v
			}
		}
	}
	return nil
}

func (ev *evaluator) attrValues(attrs []Attr, f *frame) (map[string]Value, error) {
	out := make(map[string]Value, len(attrs))
	for _, a := range attrs {
		if _, dup := out[a.Name]; dup {
			return nil, errf(a.Pos, "duplicate attribute %q", a.Name)
		}
		v, err := ev.expr(a.Value, f)
		if err != nil {
			return nil, err
		}
		out[a.Name] = v
	}
	return out, nil
}

func (ev *evaluator) resourceDecl(s ResourceDecl, f *frame) error {
	for _, body := range s.Bodies {
		titleVal, err := ev.expr(body.Title, f)
		if err != nil {
			return err
		}
		attrs, err := ev.attrValues(body.Attrs, f)
		if err != nil {
			return err
		}
		for _, title := range flattenStrings(titleVal) {
			if err := ev.declareOne(s, title, cloneAttrs(attrs), f); err != nil {
				return err
			}
		}
	}
	return nil
}

func cloneAttrs(m map[string]Value) map[string]Value {
	out := make(map[string]Value, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// flattenStrings converts a title value into one or more title strings.
func flattenStrings(v Value) []string {
	if arr, ok := v.(ArrV); ok {
		var out []string
		for _, e := range arr {
			out = append(out, flattenStrings(e)...)
		}
		return out
	}
	return []string{ValueString(v)}
}

func isMetaparam(name string) bool {
	switch name {
	case "before", "require", "notify", "subscribe", "stage":
		return true
	}
	return false
}

func (ev *evaluator) declareOne(s ResourceDecl, title string, attrs map[string]Value, f *frame) error {
	switch {
	case s.Type == "class":
		if s.Virtual {
			return errf(s.Pos, "virtual classes are not supported")
		}
		return ev.includeClassWithParams(strings.ToLower(title), attrs, s.Pos)
	case ev.defines[s.Type].Name != "":
		if s.Virtual {
			return errf(s.Pos, "virtual defined-type instances are not supported")
		}
		return ev.instantiateDefine(ev.defines[s.Type], title, attrs, f, s.Pos)
	default:
		return ev.declarePrimitive(s, title, attrs, f)
	}
}

func (ev *evaluator) declarePrimitive(s ResourceDecl, title string, attrs map[string]Value, f *frame) error {
	r := &Resource{
		Type:      s.Type,
		Title:     title,
		Attrs:     attrs,
		Virtual:   s.Virtual,
		Stage:     currentStage(f),
		Container: append([]string(nil), f.container...),
		Pos:       s.Pos,
	}
	// Apply resource defaults from innermost scope outwards.
	for scope := f; scope != nil; scope = scope.parent {
		for k, v := range scope.defaults[r.Type] {
			if _, set := r.Attrs[k]; !set {
				r.Attrs[k] = v
			}
		}
	}
	self := RefV{Type: r.Type, Title: r.Title}
	if err := ev.extractDeps(r.Attrs, self, s.Pos); err != nil {
		return err
	}
	if v, ok := r.Attrs["stage"]; ok {
		r.Stage = strings.ToLower(ValueString(v))
		delete(r.Attrs, "stage")
	}
	return ev.cat.add(r)
}

// extractDeps removes dependency metaparameters from attrs, recording the
// corresponding edges relative to self.
func (ev *evaluator) extractDeps(attrs map[string]Value, self RefV, pos Pos) error {
	record := func(name string, mk func(target RefV) Dep) error {
		v, ok := attrs[name]
		if !ok {
			return nil
		}
		delete(attrs, name)
		targets, err := refList(v)
		if err != nil {
			return errf(pos, "metaparameter %s: %v", name, err)
		}
		for _, t := range targets {
			ev.cat.Deps = append(ev.cat.Deps, mk(t))
		}
		return nil
	}
	if err := record("before", func(t RefV) Dep {
		return Dep{From: self, To: t, Kind: DepBefore, Pos: pos}
	}); err != nil {
		return err
	}
	if err := record("require", func(t RefV) Dep {
		return Dep{From: t, To: self, Kind: DepBefore, Pos: pos}
	}); err != nil {
		return err
	}
	if err := record("notify", func(t RefV) Dep {
		return Dep{From: self, To: t, Kind: DepNotify, Pos: pos}
	}); err != nil {
		return err
	}
	return record("subscribe", func(t RefV) Dep {
		return Dep{From: t, To: self, Kind: DepNotify, Pos: pos}
	})
}

// refList coerces a metaparameter value into resource references.
func refList(v Value) ([]RefV, error) {
	switch v := v.(type) {
	case RefV:
		return []RefV{v}, nil
	case ArrV:
		var out []RefV
		for _, e := range v {
			refs, err := refList(e)
			if err != nil {
				return nil, err
			}
			out = append(out, refs...)
		}
		return out, nil
	case UndefV:
		return nil, nil
	default:
		return nil, fmt.Errorf("expected resource reference, got %s", ValueString(v))
	}
}

func currentStage(f *frame) string {
	for s := f; s != nil; s = s.parent {
		if s.stage != "" {
			return s.stage
		}
	}
	return "main"
}

func (ev *evaluator) includeClass(name string, _ map[string]Value, pos Pos) error {
	return ev.includeClassWithParams(name, nil, pos)
}

func (ev *evaluator) includeClassWithParams(name string, params map[string]Value, pos Pos) error {
	decl, ok := ev.classes[name]
	if !ok {
		return errf(pos, "unknown class %q", name)
	}
	if ev.included[name] {
		if params != nil {
			return errf(pos, "class %q is already declared", name)
		}
		return nil // include is idempotent
	}
	ev.included[name] = true
	if ev.depth++; ev.depth > maxDepth {
		return errf(pos, "class/define nesting exceeds %d levels", maxDepth)
	}
	defer func() { ev.depth-- }()

	cf := &frame{
		parent:    ev.top,
		vars:      make(map[string]Value),
		defaults:  make(map[string]map[string]Value),
		container: []string{resourceKey("class", name)},
	}
	// Seed membership so references to empty classes still resolve.
	if ev.cat.members[resourceKey("class", name)] == nil {
		ev.cat.members[resourceKey("class", name)] = []string{}
	}
	if params == nil {
		params = map[string]Value{}
	}
	self := RefV{Type: "class", Title: name}
	if err := ev.extractDeps(params, self, pos); err != nil {
		return err
	}
	if v, ok := params["stage"]; ok {
		cf.stage = strings.ToLower(ValueString(v))
		delete(params, "stage")
	}
	if err := bindParams(decl.Params, params, cf, ev, pos, "class "+name); err != nil {
		return err
	}
	cf.vars["title"] = StrV(name)
	cf.vars["name"] = StrV(name)
	return ev.stmts(decl.Body, cf)
}

func (ev *evaluator) instantiateDefine(decl DefineDecl, title string, attrs map[string]Value, caller *frame, pos Pos) error {
	if ev.depth++; ev.depth > maxDepth {
		return errf(pos, "class/define nesting exceeds %d levels", maxDepth)
	}
	defer func() { ev.depth-- }()

	key := resourceKey(decl.Name, title)
	if prev, dup := ev.cat.members[key]; dup && prev != nil {
		return errf(pos, "duplicate declaration of %s[%s]", titleCase(decl.Name), title)
	}
	df := &frame{
		parent:    ev.top,
		vars:      make(map[string]Value),
		defaults:  make(map[string]map[string]Value),
		container: append(append([]string(nil), caller.container...), key),
		stage:     currentStage(caller),
	}
	// Seed membership so empty instances are still valid ref targets.
	ev.cat.members[key] = []string{}

	self := RefV{Type: decl.Name, Title: title}
	if err := ev.extractDeps(attrs, self, pos); err != nil {
		return err
	}
	if v, ok := attrs["stage"]; ok {
		df.stage = strings.ToLower(ValueString(v))
		delete(attrs, "stage")
	}
	if err := bindParams(decl.Params, attrs, df, ev, pos, titleCase(decl.Name)+"["+title+"]"); err != nil {
		return err
	}
	df.vars["title"] = StrV(title)
	df.vars["name"] = StrV(title)
	return ev.stmts(decl.Body, df)
}

// bindParams binds declared parameters from supplied attributes, applying
// defaults and rejecting unknown or missing parameters.
func bindParams(params []Param, supplied map[string]Value, f *frame, ev *evaluator, pos Pos, what string) error {
	declared := make(map[string]bool, len(params))
	for _, p := range params {
		declared[p.Name] = true
		if v, ok := supplied[p.Name]; ok {
			f.vars[p.Name] = v
			continue
		}
		if p.Default == nil {
			return errf(pos, "%s: missing required parameter $%s", what, p.Name)
		}
		v, err := ev.expr(p.Default, f)
		if err != nil {
			return err
		}
		f.vars[p.Name] = v
	}
	for name := range supplied {
		if !declared[name] && name != "title" && name != "name" {
			return errf(pos, "%s: unknown parameter %q", what, name)
		}
	}
	return nil
}

func (ev *evaluator) expr(e Expr, f *frame) (Value, error) {
	switch e := e.(type) {
	case StrExpr:
		var b strings.Builder
		for _, part := range e.Parts {
			if part.Var == "" {
				b.WriteString(part.Lit)
				continue
			}
			v, err := ev.interpolate(part.Var, f, e.Pos)
			if err != nil {
				return nil, err
			}
			b.WriteString(ValueString(v))
		}
		return StrV(b.String()), nil
	case NumExpr:
		n, ok := toNum(StrV(e.Text))
		if !ok {
			return nil, errf(e.Pos, "invalid number %q", e.Text)
		}
		return NumV(n), nil
	case BoolExpr:
		return BoolV(e.V), nil
	case UndefExpr:
		return UndefV{}, nil
	case VarExpr:
		return ev.lookupVar(e.Name, f, e.Pos)
	case ArrayExpr:
		out := make(ArrV, 0, len(e.Elems))
		for _, el := range e.Elems {
			v, err := ev.expr(el, f)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case HashExpr:
		out := make(HashV, 0, len(e.Pairs))
		for _, pair := range e.Pairs {
			k, err := ev.expr(pair.Key, f)
			if err != nil {
				return nil, err
			}
			v, err := ev.expr(pair.Value, f)
			if err != nil {
				return nil, err
			}
			out = append(out, HashEntry{Key: k, Value: v})
		}
		return out, nil
	case RefExpr:
		var refs []Value
		for _, t := range e.Titles {
			v, err := ev.expr(t, f)
			if err != nil {
				return nil, err
			}
			for _, title := range flattenStrings(v) {
				refs = append(refs, RefV{Type: e.Type, Title: title})
			}
		}
		if len(refs) == 1 {
			return refs[0], nil
		}
		return ArrV(refs), nil
	case IndexExpr:
		x, err := ev.expr(e.X, f)
		if err != nil {
			return nil, err
		}
		idx, err := ev.expr(e.Index, f)
		if err != nil {
			return nil, err
		}
		switch x := x.(type) {
		case ArrV:
			n, ok := toNum(idx)
			if !ok {
				return nil, errf(e.Pos, "array index must be numeric, got %s", ValueString(idx))
			}
			i := int(n)
			if i < 0 || i >= len(x) {
				return UndefV{}, nil // out of range is undef, like Puppet
			}
			return x[i], nil
		case HashV:
			for _, entry := range x {
				if ValueEq(entry.Key, idx) {
					return entry.Value, nil
				}
			}
			return UndefV{}, nil // missing key is undef
		default:
			return nil, errf(e.Pos, "cannot index a %s value", ValueString(x))
		}
	case BinExpr:
		return ev.binExpr(e, f)
	case NotExpr:
		v, err := ev.expr(e.X, f)
		if err != nil {
			return nil, err
		}
		return BoolV(!Truthy(v)), nil
	case SelectorExpr:
		cond, err := ev.expr(e.Cond, f)
		if err != nil {
			return nil, err
		}
		var defaultValue Expr
		for _, c := range e.Cases {
			if c.Match == nil {
				defaultValue = c.Value
				continue
			}
			mv, err := ev.expr(c.Match, f)
			if err != nil {
				return nil, err
			}
			if ValueEq(cond, mv) {
				return ev.expr(c.Value, f)
			}
		}
		if defaultValue == nil {
			return nil, errf(e.Pos, "selector has no matching case and no default")
		}
		return ev.expr(defaultValue, f)
	case DefinedExpr:
		if len(e.Ref.Titles) != 1 {
			return nil, errf(e.Pos, "defined() takes a single reference")
		}
		tv, err := ev.expr(e.Ref.Titles[0], f)
		if err != nil {
			return nil, err
		}
		title := ValueString(tv)
		switch e.Ref.Type {
		case "class":
			return BoolV(ev.included[strings.ToLower(title)]), nil
		default:
			if ev.cat.Lookup(e.Ref.Type, title) != nil {
				return BoolV(true), nil
			}
			_, isInstance := ev.cat.members[resourceKey(e.Ref.Type, title)]
			return BoolV(isInstance), nil
		}
	default:
		return nil, errf(e.Position(), "unhandled expression")
	}
}

// interpolate evaluates a ${...} interpolation: a plain variable name in
// the common case, or a full expression such as names[0] or h['k'].
func (ev *evaluator) interpolate(text string, f *frame, pos Pos) (Value, error) {
	if v, err := ev.lookupVar(text, f, pos); err == nil {
		return v, nil
	} else if isPlainName(text) {
		return nil, err // keep the undefined-variable error for plain names
	}
	expr, err := ParseExpression("$" + text)
	if err != nil {
		return nil, errf(pos, "invalid interpolation ${%s}: %v", text, err)
	}
	return ev.expr(expr, f)
}

// isPlainName reports whether an interpolation is a bare (possibly
// namespaced) variable name.
func isPlainName(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == ':':
		default:
			return false
		}
	}
	return true
}

func (ev *evaluator) lookupVar(name string, f *frame, pos Pos) (Value, error) {
	if v, ok := f.lookup(name); ok {
		return v, nil
	}
	bare := strings.TrimPrefix(name, "::")
	if v, ok := ev.facts[bare]; ok {
		return v, nil
	}
	return nil, errf(pos, "undefined variable $%s", name)
}

func (ev *evaluator) binExpr(e BinExpr, f *frame) (Value, error) {
	l, err := ev.expr(e.L, f)
	if err != nil {
		return nil, err
	}
	// Short-circuit and/or.
	switch e.Op {
	case OpAnd:
		if !Truthy(l) {
			return BoolV(false), nil
		}
		r, err := ev.expr(e.R, f)
		if err != nil {
			return nil, err
		}
		return BoolV(Truthy(r)), nil
	case OpOr:
		if Truthy(l) {
			return BoolV(true), nil
		}
		r, err := ev.expr(e.R, f)
		if err != nil {
			return nil, err
		}
		return BoolV(Truthy(r)), nil
	}
	r, err := ev.expr(e.R, f)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case OpEq:
		return BoolV(ValueEq(l, r)), nil
	case OpNeq:
		return BoolV(!ValueEq(l, r)), nil
	case OpLt, OpGt, OpLe, OpGe:
		nl, nr, ok := compareNum(l, r)
		if !ok {
			return nil, errf(e.Pos, "comparison requires numeric operands")
		}
		switch e.Op {
		case OpLt:
			return BoolV(nl < nr), nil
		case OpGt:
			return BoolV(nl > nr), nil
		case OpLe:
			return BoolV(nl <= nr), nil
		default:
			return BoolV(nl >= nr), nil
		}
	case OpIn:
		arr, ok := r.(ArrV)
		if !ok {
			return nil, errf(e.Pos, "'in' requires an array right operand")
		}
		for _, el := range arr {
			if ValueEq(l, el) {
				return BoolV(true), nil
			}
		}
		return BoolV(false), nil
	}
	return nil, errf(e.Pos, "unhandled binary operator")
}
