package puppet

import (
	"strings"
	"testing"
)

func mustEval(t *testing.T, src string) *Catalog {
	t.Helper()
	cat, err := EvaluateSource(src, Config{Facts: map[string]Value{
		"operatingsystem": StrV("Ubuntu"),
		"osfamily":        StrV("Debian"),
	}})
	if err != nil {
		t.Fatalf("evaluate: %v\nsource:\n%s", err, src)
	}
	return cat
}

func mustFail(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := EvaluateSource(src, Config{})
	if err == nil {
		t.Fatalf("expected error containing %q, got none\nsource:\n%s", wantSubstr, src)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err, wantSubstr)
	}
}

func TestSimpleResources(t *testing.T) {
	cat := mustEval(t, `
		package{'vim': ensure => present }
		file{'/home/carol/.vimrc': content => 'syntax on' }
		user{'carol': ensure => present, managehome => true }
	`)
	if len(cat.Resources) != 3 {
		t.Fatalf("resources: %s", cat.Summary())
	}
	vim := cat.Lookup("package", "vim")
	if vim == nil {
		t.Fatal("package[vim] missing")
	}
	if got, _ := vim.AttrString("ensure"); got != "present" {
		t.Errorf("ensure = %q", got)
	}
	carol := cat.Lookup("user", "carol")
	if v, ok := carol.Attrs["managehome"].(BoolV); !ok || !bool(v) {
		t.Errorf("managehome = %v", carol.Attrs["managehome"])
	}
}

func TestDuplicateResourceRejected(t *testing.T) {
	mustFail(t, `
		package{'vim': }
		package{'vim': }
	`, "duplicate declaration")
}

// Figure 2 of the paper: user-defined type with interpolation and an
// internal dependency.
func TestFigure2DefinedType(t *testing.T) {
	cat := mustEval(t, `
		define myuser() {
			user {"$title":
				ensure     => present,
				managehome => true
			}
			file {"/home/${title}/.vimrc":
				content => "syntax on"
			}
			User["$title"] -> File["/home/${title}/.vimrc"]
		}
		myuser {"alice": }
		myuser {"carol": }
	`)
	for _, u := range []string{"alice", "carol"} {
		if cat.Lookup("user", u) == nil {
			t.Errorf("user[%s] missing", u)
		}
		if cat.Lookup("file", "/home/"+u+"/.vimrc") == nil {
			t.Errorf("vimrc for %s missing", u)
		}
	}
	if len(cat.Deps) != 2 {
		t.Fatalf("deps: %+v", cat.Deps)
	}
	d := cat.Deps[0]
	if d.From.Type != "user" || d.To.Type != "file" {
		t.Errorf("dep direction wrong: %+v", d)
	}
}

func TestDefineDuplicateInstance(t *testing.T) {
	mustFail(t, `
		define d() { file{"/f-$title": } }
		d{'x': }
		d{'x': }
	`, "duplicate declaration")
}

func TestDefineParams(t *testing.T) {
	cat := mustEval(t, `
		define website($docroot, $port = 80) {
			file{"/etc/sites/$title": content => "root=$docroot port=$port" }
		}
		website{'blog': docroot => '/srv/blog' }
		website{'shop': docroot => '/srv/shop', port => 8080 }
	`)
	blog := cat.Lookup("file", "/etc/sites/blog")
	if got, _ := blog.AttrString("content"); got != "root=/srv/blog port=80" {
		t.Errorf("blog content: %q", got)
	}
	shop := cat.Lookup("file", "/etc/sites/shop")
	if got, _ := shop.AttrString("content"); got != "root=/srv/shop port=8080" {
		t.Errorf("shop content: %q", got)
	}
	mustFail(t, `
		define d($required) { file{"/f": } }
		d{'x': }
	`, "missing required parameter")
	mustFail(t, `
		define d() { file{"/f": } }
		d{'x': bogus => 1 }
	`, "unknown parameter")
}

func TestClasses(t *testing.T) {
	cat := mustEval(t, `
		class webserver {
			package{'apache2': ensure => present }
			file{'/etc/apache2/apache2.conf': content => 'x' }
		}
		include webserver
		include webserver
	`)
	if len(cat.Realized()) != 2 {
		t.Fatalf("include not idempotent: %s", cat.Summary())
	}
	// Class resource syntax with parameters.
	cat = mustEval(t, `
		class app($version = '1.0') {
			file{'/etc/app.conf': content => "v=$version" }
		}
		class {'app': version => '2.0' }
	`)
	f := cat.Lookup("file", "/etc/app.conf")
	if got, _ := f.AttrString("content"); got != "v=2.0" {
		t.Errorf("content: %q", got)
	}
	mustFail(t, `
		class c { file{'/f': } }
		include c
		class {'c': }
	`, "already declared")
	mustFail(t, `include nonexistent`, "unknown class")
}

func TestVariablesAndInterpolation(t *testing.T) {
	cat := mustEval(t, `
		$base = '/srv'
		$app  = 'shop'
		file{"${base}/${app}/config": content => "for $app" }
	`)
	if cat.Lookup("file", "/srv/shop/config") == nil {
		t.Fatalf("interpolated title missing: %s", cat.Summary())
	}
	mustFail(t, `
		$x = 1
		$x = 2
	`, "cannot reassign")
	mustFail(t, `file{"$nope": }`, "undefined variable")
}

func TestFacts(t *testing.T) {
	cat := mustEval(t, `
		file{'/etc/issue': content => "os=${operatingsystem} fam=${::osfamily}" }
	`)
	f := cat.Lookup("file", "/etc/issue")
	if got, _ := f.AttrString("content"); got != "os=Ubuntu fam=Debian" {
		t.Errorf("content: %q", got)
	}
}

func TestConditionals(t *testing.T) {
	cat := mustEval(t, `
		if $operatingsystem == 'Ubuntu' {
			package{'apache2': }
		} else {
			package{'httpd': }
		}
		if $operatingsystem == 'CentOS' {
			package{'never': }
		} elsif $operatingsystem == 'Ubuntu' {
			package{'elsif-hit': }
		} else {
			package{'else-hit': }
		}
		if !($operatingsystem != 'Ubuntu') {
			package{'negation': }
		}
	`)
	for _, want := range []string{"apache2", "elsif-hit", "negation"} {
		if cat.Lookup("package", want) == nil {
			t.Errorf("package[%s] missing: %s", want, cat.Summary())
		}
	}
	for _, absent := range []string{"httpd", "never", "else-hit"} {
		if cat.Lookup("package", absent) != nil {
			t.Errorf("package[%s] should not exist", absent)
		}
	}
}

func TestCaseAndSelector(t *testing.T) {
	cat := mustEval(t, `
		case $operatingsystem {
			'centos', 'redhat': { $pkg = 'httpd' }
			'ubuntu', 'debian': { $pkg = 'apache2' }
			default:            { $pkg = 'unknown' }
		}
		package{"$pkg": }
		$svc = $operatingsystem ? {
			'CentOS' => 'httpd',
			'Ubuntu' => 'apache2-svc',
			default  => 'none',
		}
		service{"$svc": ensure => running }
	`)
	if cat.Lookup("package", "apache2") == nil {
		t.Errorf("case arm not taken: %s", cat.Summary())
	}
	if cat.Lookup("service", "apache2-svc") == nil {
		t.Errorf("selector arm not taken: %s", cat.Summary())
	}
	mustFail(t, `$x = 'a' ? { 'b' => 1 }`, "no matching case")
}

func TestChainingAndMetaparams(t *testing.T) {
	cat := mustEval(t, `
		package{'apache2': }
		file{'/etc/apache2/sites-available/000-default.conf': content => 'x' }
		service{'apache2': ensure => running }
		Package['apache2'] -> File['/etc/apache2/sites-available/000-default.conf'] ~> Service['apache2']
		package{'ntp': before => Service['ntp'] }
		service{'ntp': }
		file{'/etc/ntp.conf': require => Package['ntp'], notify => Service['ntp'] }
		cron{'x': subscribe => [File['/etc/ntp.conf'], Package['ntp']] }
	`)
	type edge struct{ from, to string }
	want := map[edge]bool{
		{"package[apache2]", "file[/etc/apache2/sites-available/000-default.conf]"}: true,
		{"file[/etc/apache2/sites-available/000-default.conf]", "service[apache2]"}: true,
		{"package[ntp]", "service[ntp]"}:                                            true,
		{"package[ntp]", "file[/etc/ntp.conf]"}:                                     true,
		{"file[/etc/ntp.conf]", "service[ntp]"}:                                     true,
		{"file[/etc/ntp.conf]", "cron[x]"}:                                          true,
		{"package[ntp]", "cron[x]"}:                                                 true,
	}
	got := map[edge]bool{}
	for _, d := range cat.Deps {
		got[edge{resourceKey(d.From.Type, d.From.Title), resourceKey(d.To.Type, d.To.Title)}] = true
	}
	for e := range want {
		if !got[e] {
			t.Errorf("missing edge %v; have %v", e, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("extra edges: got %v", got)
	}
}

func TestResourceDefaults(t *testing.T) {
	cat := mustEval(t, `
		File { mode => '0644', owner => 'root' }
		file{'/a': owner => 'web' }
		class c {
			File { mode => '0600' }
			file{'/b': }
		}
		include c
	`)
	a := cat.Lookup("file", "/a")
	if got, _ := a.AttrString("mode"); got != "0644" {
		t.Errorf("/a mode: %q", got)
	}
	if got, _ := a.AttrString("owner"); got != "web" {
		t.Errorf("/a owner not overridden: %q", got)
	}
	b := cat.Lookup("file", "/b")
	if got, _ := b.AttrString("mode"); got != "0600" {
		t.Errorf("/b mode: %q", got)
	}
	if got, _ := b.AttrString("owner"); got != "root" {
		t.Errorf("/b owner (outer default): %q", got)
	}
}

func TestVirtualAndCollectors(t *testing.T) {
	cat := mustEval(t, `
		@user{'alice': ensure => present, groups => 'admin' }
		@user{'bob': ensure => present, groups => 'dev' }
		user{'carol': ensure => present, groups => 'admin' }
		User<| groups == 'admin' |>
	`)
	alice := cat.Lookup("user", "alice")
	if alice.Virtual {
		t.Error("alice not realized")
	}
	bob := cat.Lookup("user", "bob")
	if !bob.Virtual {
		t.Error("bob should remain virtual")
	}
	if len(cat.Realized()) != 2 {
		t.Errorf("realized: %d", len(cat.Realized()))
	}
	// The paper's collector example: override an attribute everywhere.
	cat = mustEval(t, `
		file{'/a': owner => 'carol', mode => 'x' }
		file{'/b': owner => 'dave' }
		File<| owner == 'carol' |> { mode => 'go-rwx' }
	`)
	if got, _ := cat.Lookup("file", "/a").AttrString("mode"); got != "go-rwx" {
		t.Errorf("/a mode: %q", got)
	}
	if got, ok := cat.Lookup("file", "/b").AttrString("mode"); ok {
		t.Errorf("/b mode should be unset, got %q", got)
	}
	// Empty query realizes everything of the type.
	cat = mustEval(t, `
		@package{'p1': }
		@package{'p2': }
		Package<| |>
	`)
	if len(cat.Realized()) != 2 {
		t.Errorf("empty collector: %s", cat.Summary())
	}
	// != query.
	cat = mustEval(t, `
		@package{'p1': ensure => present }
		@package{'p2': ensure => absent }
		Package<| ensure != present |>
	`)
	if !cat.Lookup("package", "p1").Virtual || cat.Lookup("package", "p2").Virtual {
		t.Errorf("!= collector: %s", cat.Summary())
	}
}

func TestStages(t *testing.T) {
	cat := mustEval(t, `
		stage{'pre': before => Stage['main'] }
		class prep {
			package{'curl': }
		}
		class {'prep': stage => 'pre' }
		package{'apache2': }
	`)
	curl := cat.Lookup("package", "curl")
	if curl.Stage != "pre" {
		t.Errorf("curl stage: %q", curl.Stage)
	}
	apache := cat.Lookup("package", "apache2")
	if apache.Stage != "main" {
		t.Errorf("apache stage: %q", apache.Stage)
	}
	if len(cat.Stages()) != 1 {
		t.Errorf("stage resources: %d", len(cat.Stages()))
	}
	// Stage resources are excluded from Realized.
	for _, r := range cat.Realized() {
		if r.Type == "stage" {
			t.Error("stage resource in Realized()")
		}
	}
}

func TestDefined(t *testing.T) {
	cat := mustEval(t, `
		package{'make': }
		if !defined(Package['make']) {
			package{'make-dup': }
		}
		if defined(Package['make']) {
			package{'saw-make': }
		}
		class c { }
		include c
		if defined(Class['c']) {
			package{'saw-class': }
		}
	`)
	if cat.Lookup("package", "make-dup") != nil {
		t.Error("defined() guard failed")
	}
	if cat.Lookup("package", "saw-make") == nil || cat.Lookup("package", "saw-class") == nil {
		t.Errorf("defined() positive cases: %s", cat.Summary())
	}
}

func TestClassAndDefineRefs(t *testing.T) {
	cat := mustEval(t, `
		class db {
			package{'mysql-server': }
		}
		include db
		package{'app': require => Class['db'] }
		define vhost() {
			file{"/etc/sites/$title": }
		}
		vhost{'blog': }
		Vhost['blog'] -> Package['app2']
		package{'app2': }
	`)
	// Expansion of a class ref.
	rs, err := cat.Expand(RefV{Type: "class", Title: "db"})
	if err != nil || len(rs) != 1 || rs[0].Title != "mysql-server" {
		t.Errorf("class expand: %v %v", rs, err)
	}
	// Expansion of a define-instance ref.
	rs, err = cat.Expand(RefV{Type: "vhost", Title: "blog"})
	if err != nil || len(rs) != 1 || rs[0].Type != "file" {
		t.Errorf("define expand: %v %v", rs, err)
	}
	// Unknown ref fails.
	if _, err := cat.Expand(RefV{Type: "package", Title: "ghost"}); err == nil {
		t.Error("unknown ref resolved")
	}
}

func TestTitleArrays(t *testing.T) {
	cat := mustEval(t, `
		package{['m4', 'make', 'gcc']: ensure => present }
	`)
	for _, p := range []string{"m4", "make", "gcc"} {
		if cat.Lookup("package", p) == nil {
			t.Errorf("package[%s] missing", p)
		}
	}
}

func TestMultiBodyDeclaration(t *testing.T) {
	cat := mustEval(t, `
		user{'carol': ensure => present;
		     'dave':  ensure => absent }
	`)
	if cat.Lookup("user", "carol") == nil || cat.Lookup("user", "dave") == nil {
		t.Fatalf("multi-body: %s", cat.Summary())
	}
	if got, _ := cat.Lookup("user", "dave").AttrString("ensure"); got != "absent" {
		t.Errorf("dave ensure: %q", got)
	}
}

func TestOperatorsInConditions(t *testing.T) {
	cat := mustEval(t, `
		$n = 3
		if $n > 2 and $n <= 3 { package{'range-ok': } }
		if $n < 2 or $n >= 3 { package{'or-ok': } }
		if 'b' in ['a', 'b'] { package{'in-ok': } }
		if 'APACHE2' == 'apache2' { package{'ci-ok': } }
	`)
	for _, p := range []string{"range-ok", "or-ok", "in-ok", "ci-ok"} {
		if cat.Lookup("package", p) == nil {
			t.Errorf("package[%s] missing: %s", p, cat.Summary())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`package{`,
		`package{'x' ensure => present}`,
		`-> File['x']`,
		`File['x'] ->`,
		`class c inherits d { }`,
		`file{'x': attr +> 1}`,
		`Package['x'] File['y']`,
		`if { }`,
		`$x 1`,
		`@class{'x': }`,
	} {
		if _, err := EvaluateSource(src, Config{}); err == nil {
			t.Errorf("source should fail: %q", src)
		}
	}
}

func TestHashValues(t *testing.T) {
	cat := mustEval(t, `
		$h = { 'a' => 1, 'b' => 2 }
		file{'/f': content => "${h}" }
	`)
	if cat.Lookup("file", "/f") == nil {
		t.Fatal("hash manifest failed")
	}
}
