package puppet

import (
	"strings"
	"unicode"
)

// lexer converts manifest source into tokens.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

// Lex tokenizes the entire source.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekAt(off int) rune {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) here() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsSpace(r):
			lx.advance()
		case r == '#':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peekAt(1) == '*':
			start := lx.here()
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isNameStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isNameRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.here()
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	r := lx.peek()
	switch {
	case r == '\'':
		return lx.singleQuoted(pos)
	case r == '"':
		return lx.doubleQuoted(pos)
	case r == '$':
		lx.advance()
		return lx.variable(pos)
	case unicode.IsDigit(r):
		return lx.number(pos)
	case isNameStart(r):
		return lx.name(pos)
	}
	lx.advance()
	two := func(nextRune rune, with, without TokenKind) Token {
		if lx.peek() == nextRune {
			lx.advance()
			return Token{Kind: with, Pos: pos}
		}
		return Token{Kind: without, Pos: pos}
	}
	switch r {
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case ':':
		// Namespaced names (a::b) are handled in name(); a bare ':' here
		// is the resource-title separator.
		return Token{Kind: TokColon, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case '=':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: TokFatArrow, Pos: pos}, nil
		}
		return two('=', TokEq, TokAssign), nil
	case '+':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: TokPlusArrow, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '+'")
	case '-':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: TokArrow, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '-'")
	case '~':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: TokTildeArrow, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '~'")
	case '!':
		return two('=', TokNeq, TokBang), nil
	case '<':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: TokCollectorOpen, Pos: pos}, nil
		}
		return two('=', TokLe, TokLt), nil
	case '>':
		return two('=', TokGe, TokGt), nil
	case '|':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: TokCollectorEnd, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '|'")
	case '?':
		return Token{Kind: TokQuestion, Pos: pos}, nil
	case '@':
		return Token{Kind: TokAt, Pos: pos}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", r)
}

func (lx *lexer) singleQuoted(pos Pos) (Token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return Token{}, errf(pos, "unterminated string")
		}
		r := lx.advance()
		if r == '\'' {
			break
		}
		if r == '\\' && (lx.peek() == '\'' || lx.peek() == '\\') {
			r = lx.advance()
		}
		b.WriteRune(r)
	}
	text := b.String()
	return Token{Kind: TokString, Text: text, Parts: []StringPart{{Lit: text}}, Pos: pos}, nil
}

func (lx *lexer) doubleQuoted(pos Pos) (Token, error) {
	lx.advance() // opening quote
	var parts []StringPart
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			parts = append(parts, StringPart{Lit: lit.String()})
			lit.Reset()
		}
	}
	for {
		if lx.pos >= len(lx.src) {
			return Token{}, errf(pos, "unterminated string")
		}
		r := lx.advance()
		switch {
		case r == '"':
			flush()
			if len(parts) == 0 {
				parts = []StringPart{{Lit: ""}}
			}
			text := ""
			for _, p := range parts {
				if p.Var != "" {
					text += "${" + p.Var + "}"
				} else {
					text += p.Lit
				}
			}
			return Token{Kind: TokString, Text: text, Parts: parts, Pos: pos}, nil
		case r == '\\':
			if lx.pos >= len(lx.src) {
				return Token{}, errf(pos, "unterminated string")
			}
			esc := lx.advance()
			switch esc {
			case 'n':
				lit.WriteRune('\n')
			case 't':
				lit.WriteRune('\t')
			default:
				lit.WriteRune(esc)
			}
		case r == '$' && lx.peek() == '{':
			lx.advance() // {
			var name strings.Builder
			for lx.pos < len(lx.src) && lx.peek() != '}' {
				name.WriteRune(lx.advance())
			}
			if lx.pos >= len(lx.src) {
				return Token{}, errf(pos, "unterminated interpolation")
			}
			lx.advance() // }
			flush()
			parts = append(parts, StringPart{Var: strings.TrimSpace(name.String())})
		case r == '$' && isNameStart(lx.peek()):
			var name strings.Builder
			for lx.pos < len(lx.src) && (isNameRune(lx.peek()) && lx.peek() != '-' && lx.peek() != '.') {
				name.WriteRune(lx.advance())
			}
			flush()
			parts = append(parts, StringPart{Var: name.String()})
		default:
			lit.WriteRune(r)
		}
	}
}

func (lx *lexer) variable(pos Pos) (Token, error) {
	var b strings.Builder
	// Optional top-scope prefix: $::osfamily.
	if lx.peek() == ':' && lx.peekAt(1) == ':' {
		b.WriteRune(lx.advance())
		b.WriteRune(lx.advance())
	}
	if !isNameStart(lx.peek()) {
		return Token{}, errf(pos, "invalid variable name")
	}
	for lx.pos < len(lx.src) && (isNameRune(lx.peek()) || lx.peek() == ':') {
		if lx.peek() == ':' {
			if lx.peekAt(1) != ':' {
				break
			}
			b.WriteRune(lx.advance())
			b.WriteRune(lx.advance())
			continue
		}
		b.WriteRune(lx.advance())
	}
	return Token{Kind: TokVariable, Text: b.String(), Pos: pos}, nil
}

func (lx *lexer) number(pos Pos) (Token, error) {
	var b strings.Builder
	for lx.pos < len(lx.src) && (unicode.IsDigit(lx.peek()) || lx.peek() == '.') {
		b.WriteRune(lx.advance())
	}
	return Token{Kind: TokNumber, Text: b.String(), Pos: pos}, nil
}

func (lx *lexer) name(pos Pos) (Token, error) {
	var b strings.Builder
	first := lx.peek()
	for lx.pos < len(lx.src) && (isNameRune(lx.peek()) || lx.peek() == ':') {
		if lx.peek() == ':' {
			if lx.peekAt(1) != ':' {
				break
			}
			b.WriteRune(lx.advance())
			b.WriteRune(lx.advance())
			continue
		}
		b.WriteRune(lx.advance())
	}
	kind := TokName
	if unicode.IsUpper(first) {
		kind = TokTypeRef
	}
	return Token{Kind: kind, Text: b.String(), Pos: pos}, nil
}
