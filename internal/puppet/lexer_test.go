package puppet

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`package{'vim': ensure => present }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokName, TokLBrace, TokString, TokColon,
		TokName, TokFatArrow, TokName, TokRBrace, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v (%v)", i, got[i], want[i], toks[i])
		}
	}
	if toks[0].Text != "package" || toks[2].Text != "vim" {
		t.Errorf("texts: %q %q", toks[0].Text, toks[2].Text)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`-> ~> => == != <= >= < > = ! ? @ <| |> ( ) [ ] ; ,`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokArrow, TokTildeArrow, TokFatArrow, TokEq, TokNeq, TokLe, TokGe,
		TokLt, TokGt, TokAssign, TokBang, TokQuestion, TokAt,
		TokCollectorOpen, TokCollectorEnd, TokLParen, TokRParen,
		TokLBracket, TokRBracket, TokSemi, TokComma, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("# line comment\nfoo /* block\ncomment */ bar")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "foo" || toks[1].Text != "bar" {
		t.Fatalf("tokens: %v", toks)
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("unterminated comment accepted")
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex(`'it\'s' "a $x and ${y} z" "\n\t"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "it's" {
		t.Errorf("single quoted: %q", toks[0].Text)
	}
	parts := toks[1].Parts
	if len(parts) != 5 || parts[0].Lit != "a " || parts[1].Var != "x" ||
		parts[2].Lit != " and " || parts[3].Var != "y" || parts[4].Lit != " z" {
		t.Errorf("interpolation parts: %+v", parts)
	}
	if _, err := Lex(`"unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Lex(`'unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestLexInterpolationTail(t *testing.T) {
	toks, err := Lex(`"${x} z"`)
	if err != nil {
		t.Fatal(err)
	}
	parts := toks[0].Parts
	if len(parts) != 2 || parts[0].Var != "x" || parts[1].Lit != " z" {
		t.Errorf("parts: %+v", parts)
	}
}

func TestLexVariablesAndNamespaces(t *testing.T) {
	toks, err := Lex(`$foo $::osfamily $a::b apache::vhost Foo::Bar`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "foo" || toks[0].Kind != TokVariable {
		t.Errorf("var: %+v", toks[0])
	}
	if toks[1].Text != "::osfamily" {
		t.Errorf("top-scope var: %q", toks[1].Text)
	}
	if toks[2].Text != "a::b" {
		t.Errorf("namespaced var: %q", toks[2].Text)
	}
	if toks[3].Text != "apache::vhost" || toks[3].Kind != TokName {
		t.Errorf("namespaced name: %+v", toks[3])
	}
	if toks[4].Kind != TokTypeRef {
		t.Errorf("type ref: %+v", toks[4])
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("42 3.14")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "42" || toks[0].Kind != TokNumber {
		t.Errorf("int: %+v", toks[0])
	}
	if toks[1].Text != "3.14" {
		t.Errorf("float: %+v", toks[1])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"%", "^", "&", "+", "|x", "~x", "-x", "$1"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}
