package puppet_test

import (
	"fmt"
	"log"

	"repro/internal/puppet"
)

// Evaluating a manifest yields its catalog of primitive resources and
// dependency edges.
func ExampleEvaluateSource() {
	cat, err := puppet.EvaluateSource(`
define website($port = 80) {
  file {"/etc/sites/${title}": content => "port=${port}" }
}
website {'blog': }
website {'shop': port => 8080 }
`, puppet.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range cat.Realized() {
		content, _ := r.AttrString("content")
		fmt.Printf("%s %s\n", r, content)
	}
	// Output:
	// File[/etc/sites/blog] port=80
	// File[/etc/sites/shop] port=8080
}

// Platform facts drive conditional compilation (section 8: the analysis
// is platform-dependent).
func ExampleEvaluateSource_facts() {
	manifest := `
$pkg = $osfamily ? {
  'Debian' => 'apache2',
  'RedHat' => 'httpd',
}
package {"$pkg": ensure => present }
`
	for _, fam := range []string{"Debian", "RedHat"} {
		cat, err := puppet.EvaluateSource(manifest, puppet.Config{
			Facts: map[string]puppet.Value{"osfamily": puppet.StrV(fam)},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(cat.Realized()[0])
	}
	// Output:
	// Package[apache2]
	// Package[httpd]
}
