package puppet

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genValue wraps a random Puppet runtime value.
type genValue struct{ v Value }

func randomValue(r *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return StrV([]string{"a", "B", "", "10", "présent"}[r.Intn(5)])
		case 1:
			return NumV(float64(r.Intn(100)) / 4)
		case 2:
			return BoolV(r.Intn(2) == 0)
		case 3:
			return UndefV{}
		default:
			return RefV{Type: "package", Title: []string{"vim", "ntp"}[r.Intn(2)]}
		}
	}
	switch r.Intn(3) {
	case 0:
		n := r.Intn(3)
		arr := make(ArrV, n)
		for i := range arr {
			arr[i] = randomValue(r, depth-1)
		}
		return arr
	case 1:
		n := r.Intn(3)
		h := make(HashV, 0, n)
		for i := 0; i < n; i++ {
			h = append(h, HashEntry{Key: StrV(string(rune('a' + i))), Value: randomValue(r, depth-1)})
		}
		return h
	default:
		return randomValue(r, 0)
	}
}

// Generate implements quick.Generator.
func (genValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genValue{v: randomValue(r, 2)})
}

// ValueEq is reflexive.
func TestQuickValueEqReflexive(t *testing.T) {
	f := func(g genValue) bool { return ValueEq(g.v, g.v) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ValueEq is symmetric.
func TestQuickValueEqSymmetric(t *testing.T) {
	f := func(a, b genValue) bool {
		return ValueEq(a.v, b.v) == ValueEq(b.v, a.v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Equal values render compatibly for numeric/string coercions: if two
// values are ValueEq and both are scalars, their ValueString forms are
// ValueEq again (interpolation does not break equality).
func TestQuickValueStringPreservesScalarEq(t *testing.T) {
	scalar := func(v Value) bool {
		switch v.(type) {
		case StrV, NumV:
			return true
		}
		return false
	}
	f := func(a, b genValue) bool {
		if !scalar(a.v) || !scalar(b.v) || !ValueEq(a.v, b.v) {
			return true // vacuous
		}
		return ValueEq(StrV(ValueString(a.v)), StrV(ValueString(b.v)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Truthiness: only false and undef are false (section "Puppet truthiness").
func TestQuickTruthy(t *testing.T) {
	f := func(g genValue) bool {
		switch v := g.v.(type) {
		case BoolV:
			return Truthy(g.v) == bool(v)
		case UndefV:
			return !Truthy(g.v)
		default:
			return Truthy(g.v)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Lexing is total on double-quoted strings built from arbitrary printable
// payloads: the lexer either errors or round-trips the token stream
// without panicking.
func TestQuickLexNoPanics(t *testing.T) {
	f := func(payload string) bool {
		_, _ = Lex(payload) // must not panic; errors are fine
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
