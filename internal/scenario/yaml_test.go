package scenario

import (
	"reflect"
	"testing"
)

func TestParseYAMLStructure(t *testing.T) {
	src := `
# a scenario-shaped document
name: demo
mode: daemon   # trailing comment
faults: seed=42,burst=2,kinds=status+reset
checks: [determinism, idempotence]
steps:
  - name: first
    action: submit
    manifest: |
      package {'ntp': ensure => present }
      file {'/etc/ntp.conf':
        content => 'server pool.ntp.org',
      }
    expect:
      status: 202
      report:
        determinism.ok: "true"
      calls:
        min: 1
        max: 12
  - name: second
    action: drain
  - plain-item
`
	v, err := parseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	root := v.(map[string]any)
	if root["name"] != "demo" || root["mode"] != "daemon" {
		t.Fatalf("scalars: %v / %v", root["name"], root["mode"])
	}
	if root["faults"] != "seed=42,burst=2,kinds=status+reset" {
		t.Fatalf("faults: %q", root["faults"])
	}
	if !reflect.DeepEqual(root["checks"], []any{"determinism", "idempotence"}) {
		t.Fatalf("flow list: %#v", root["checks"])
	}
	steps := root["steps"].([]any)
	if len(steps) != 3 {
		t.Fatalf("steps: %d", len(steps))
	}
	first := steps[0].(map[string]any)
	wantManifest := "package {'ntp': ensure => present }\nfile {'/etc/ntp.conf':\n  content => 'server pool.ntp.org',\n}\n"
	if first["manifest"] != wantManifest {
		t.Fatalf("block scalar:\n%q\nwant\n%q", first["manifest"], wantManifest)
	}
	expect := first["expect"].(map[string]any)
	if expect["status"] != "202" {
		t.Fatalf("nested scalar: %q", expect["status"])
	}
	if expect["report"].(map[string]any)["determinism.ok"] != "true" {
		t.Fatalf("quoted value: %#v", expect["report"])
	}
	calls := expect["calls"].(map[string]any)
	if calls["min"] != "1" || calls["max"] != "12" {
		t.Fatalf("calls: %#v", calls)
	}
	if steps[1].(map[string]any)["action"] != "drain" {
		t.Fatalf("second step: %#v", steps[1])
	}
	if steps[2] != "plain-item" {
		t.Fatalf("plain sequence item: %#v", steps[2])
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := map[string]string{
		"tab":            "a:\n\tb: 1",
		"bad indent":     "a: 1\n   b: 2",
		"seq in map":     "a: 1\n- b",
		"unterminated [": "a: [1, 2",
		"unterminated '": "a: 'x",
		"no colon":       "a: 1\njustaword",
	}
	for name, src := range cases {
		if _, err := parseYAML(src); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestParseYAMLQuoting(t *testing.T) {
	v, err := parseYAML("a: \"x: #y\"\nb: 'it''s'\nc: plain text\n")
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	if m["a"] != "x: #y" || m["b"] != "it's" || m["c"] != "plain text" {
		t.Fatalf("quoting: %#v", m)
	}
}

// Every scenario the writer emits must be readable by the reader, and a
// read-write-read trip must be a fixed point — this is what makes record
// mode's output replayable.
func TestScenarioEncodeRoundTrip(t *testing.T) {
	code := 4
	yes := true
	sc := &Scenario{
		Name:        "round-trip",
		Description: "writer/reader fixed point",
		Mode:        ModeCluster,
		Nodes:       3,
		Workers:     2,
		Attempts:    6,
		Faults:      "seed=7,burst=2,kinds=status+reset",
		Checks:      []string{"determinism"},
		Steps: []Step{
			{
				Name:     "submit it",
				Action:   ActionSubmit,
				Manifest: "package {'ntp': ensure => present }\n\nfile {'/x': content => 'y' }\n",
				Semantic: true,
				Node:     1,
				Wait:     true,
				Expect: Expect{
					Status:  202,
					State:   "done",
					Verdict: "pass",
					Report:  map[string]string{"determinism.ok": "true"},
					Metrics: map[string]int64{"rehearsald_jobs_total": 1},
					Calls:   &CallBounds{Min: 1, Max: 12},
				},
			},
			{
				Name:     "no-wait resubmit",
				Action:   ActionSubmit,
				Base:     "submit it",
				Manifest: "package {'ntp': ensure => present }\n",
				Wait:     false,
				Expect:   Expect{Deduped: &yes, Calls: &CallBounds{Min: 0, Max: -1}},
			},
			{Name: "drain node 0", Action: ActionDrain},
			{
				Name:     "rejected",
				Action:   ActionSubmit,
				Manifest: "package {'git': ensure => present }\n",
				Expect:   Expect{Status: 503, RetryAfter: &yes, ExitCode: &code},
			},
		},
	}
	once := sc.Encode()
	back, err := Parse(once)
	if err != nil {
		t.Fatalf("reader rejected writer output: %v\n%s", err, once)
	}
	twice := back.Encode()
	if once != twice {
		t.Fatalf("encode not a fixed point:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
	back.dir = sc.dir
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip changed the scenario:\n%#v\nvs\n%#v", sc, back)
	}
}
