package scenario

// Package scenario is the record/replay harness: declarative YAML
// scenarios that drive the rehearsal CLI code path, a rehearsald daemon,
// or a multi-node cluster end-to-end against the chaos pkgserver, and
// check everything a black-box caller can observe — HTTP statuses, exit
// codes, terminal job states, verdicts, JSON-report fields, Prometheus
// metric deltas, Retry-After headers, and per-step package-server call
// counts (the retry-loop budget). Replays are deterministic: the same
// scenario yields byte-identical expected-vs-actual summaries on every
// run, so the committed corpus under scenarios/ is a regression oracle,
// not a flake source. Record mode runs a scenario and writes the observed
// outcomes back into its expectations, turning a live run into a pinned
// scenario file.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Scenario modes: which surface the steps drive.
const (
	ModeCLI     = "cli"     // service.BuildReport + ExitCode, the rehearsal -json path
	ModeDaemon  = "daemon"  // one rehearsald over HTTP
	ModeCluster = "cluster" // an n-node consistent-hash fleet over HTTP
)

// Step actions.
const (
	ActionSubmit = "submit" // verify a manifest (POST /v1/jobs or CLI run)
	ActionAwait  = "await"  // wait for an earlier submit to reach a terminal state
	ActionCancel = "cancel" // DELETE /v1/jobs/{id} for an earlier submit
	ActionDrain  = "drain"  // gracefully drain the daemon (daemon mode)
)

// Scenario is one replayable end-to-end script.
type Scenario struct {
	Name        string
	Description string
	Mode        string // cli | daemon | cluster
	Nodes       int    // cluster size; 0 means 3
	Workers     int    // scheduler workers per node; 0 means 2
	QueueDepth  int    // 0 means the service default
	Attempts    int    // pkgdb client attempts; 0 means the client default
	Faults      string // faults.ParseSpec chaos spec for the pkgserver; "" = none
	Checks      []string
	Steps       []Step

	dir string // directory of the source file, for manifest_file
}

// Step is one scripted interaction.
type Step struct {
	Name         string
	Action       string
	Manifest     string // inline manifest source (literal block in YAML)
	ManifestFile string // or a file path relative to the scenario file
	Base         string // name of an earlier submit step (differential base)
	Checks       []string
	Invariant    string
	Semantic     bool
	Platform     string
	Node         int    // cluster mode: which node receives the request
	Wait         bool   // submit: wait for a terminal state before the next step
	Job          string // await/cancel: name of the earlier submit step
	Expect       Expect
}

// Expect pins what a step must observe; zero-valued fields are unchecked.
// Record mode overwrites the checked fields with what actually happened.
type Expect struct {
	Status     int               // HTTP status (daemon/cluster modes)
	ExitCode   *int              // CLI exit code (cli mode)
	State      string            // terminal job state (waited submits, await, cancel)
	Verdict    string            // report verdict
	ErrorClass string            // report error class (timeout/canceled/infra/manifest)
	Deduped    *bool             // submission coalesced onto existing work
	RetryAfter *bool             // Retry-After header present on the response
	Report     map[string]string // JSON-report dot-path -> expected value
	Metrics    map[string]int64  // metric name -> exact delta across the step
	Calls      *CallBounds       // pkgserver HTTP calls during the step
}

// CallBounds bounds the package-server calls a step may make: retries
// under chaos push the count up, caches pull it down to zero, and both
// are part of the contract being replayed. Max < 0 (an omitted `max` key)
// means unbounded above; `min: 0, max: 0` pins a warm round to exactly
// zero provider calls.
type CallBounds struct {
	Min int
	Max int
}

// Load reads and decodes a scenario file.
func Load(path string) (*Scenario, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sc.dir = filepath.Dir(path)
	return sc, nil
}

// Parse decodes scenario YAML.
func Parse(src string) (*Scenario, error) {
	tree, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	root, ok := tree.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("scenario: top level must be a mapping")
	}
	d := &decoder{}
	sc := &Scenario{
		Name:        d.str(root, "name"),
		Description: d.str(root, "description"),
		Mode:        d.str(root, "mode"),
		Nodes:       d.num(root, "nodes"),
		Workers:     d.num(root, "workers"),
		QueueDepth:  d.num(root, "queue_depth"),
		Attempts:    d.num(root, "attempts"),
		Faults:      d.str(root, "faults"),
	}
	if cs, ok := root["checks"]; ok {
		sc.Checks = d.strList(cs, "checks")
	}
	for _, it := range d.list(root, "steps") {
		m, ok := it.(map[string]any)
		if !ok {
			d.errf("steps: every step must be a mapping")
			continue
		}
		sc.Steps = append(sc.Steps, d.step(m))
	}
	d.checkKeys(root, "scenario", "name", "description", "mode", "nodes",
		"workers", "queue_depth", "attempts", "faults", "checks", "steps")
	if err := d.finish(); err != nil {
		return nil, err
	}
	return sc, sc.validate()
}

func (sc *Scenario) validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	switch sc.Mode {
	case ModeCLI, ModeDaemon, ModeCluster:
	default:
		return fmt.Errorf("scenario %s: mode must be cli, daemon or cluster (got %q)", sc.Name, sc.Mode)
	}
	if len(sc.Steps) == 0 {
		return fmt.Errorf("scenario %s: no steps", sc.Name)
	}
	submits := map[string]bool{}
	for i := range sc.Steps {
		st := &sc.Steps[i]
		if st.Name == "" {
			st.Name = fmt.Sprintf("step-%d", i+1)
		}
		switch st.Action {
		case ActionSubmit:
			if st.Manifest == "" && st.ManifestFile == "" {
				return fmt.Errorf("scenario %s, step %s: submit needs manifest or manifest_file", sc.Name, st.Name)
			}
			if st.Base != "" && !submits[st.Base] {
				return fmt.Errorf("scenario %s, step %s: base %q is not an earlier submit step", sc.Name, st.Name, st.Base)
			}
			submits[st.Name] = true
		case ActionAwait, ActionCancel:
			if sc.Mode == ModeCLI {
				return fmt.Errorf("scenario %s, step %s: %s is meaningless in cli mode", sc.Name, st.Name, st.Action)
			}
			if !submits[st.Job] {
				return fmt.Errorf("scenario %s, step %s: job %q is not an earlier submit step", sc.Name, st.Name, st.Job)
			}
		case ActionDrain:
			if sc.Mode == ModeCLI {
				return fmt.Errorf("scenario %s, step %s: drain is meaningless in cli mode", sc.Name, st.Name)
			}
		default:
			return fmt.Errorf("scenario %s, step %s: unknown action %q", sc.Name, st.Name, st.Action)
		}
		if st.Node < 0 || (sc.Mode == ModeCluster && st.Node >= sc.nodes()) {
			return fmt.Errorf("scenario %s, step %s: node %d out of range", sc.Name, st.Name, st.Node)
		}
		if b := st.Expect.Calls; b != nil && b.Max >= 0 && b.Min > b.Max {
			return fmt.Errorf("scenario %s, step %s: calls.min %d > calls.max %d", sc.Name, st.Name, b.Min, b.Max)
		}
	}
	return nil
}

func (sc *Scenario) nodes() int {
	if sc.Nodes > 0 {
		return sc.Nodes
	}
	return 3
}

func (sc *Scenario) workers() int {
	if sc.Workers > 0 {
		return sc.Workers
	}
	return 2
}

// manifestSource resolves a step's manifest text.
func (sc *Scenario) manifestSource(st *Step) (string, error) {
	if st.Manifest != "" {
		return st.Manifest, nil
	}
	b, err := os.ReadFile(filepath.Join(sc.dir, filepath.FromSlash(st.ManifestFile)))
	if err != nil {
		return "", fmt.Errorf("step %s: %w", st.Name, err)
	}
	return string(b), nil
}

// --- typed decode over the generic YAML tree -------------------------

type decoder struct{ errs []string }

func (d *decoder) errf(format string, args ...any) {
	d.errs = append(d.errs, fmt.Sprintf(format, args...))
}

func (d *decoder) finish() error {
	if len(d.errs) == 0 {
		return nil
	}
	return fmt.Errorf("scenario: %s", strings.Join(d.errs, "; "))
}

func (d *decoder) str(m map[string]any, key string) string {
	v, ok := m[key]
	if !ok {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		d.errf("%s: want a string", key)
		return ""
	}
	return s
}

func (d *decoder) num(m map[string]any, key string) int {
	s := d.str(m, key)
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		d.errf("%s: want an integer, got %q", key, s)
		return 0
	}
	return n
}

func (d *decoder) boolean(m map[string]any, key string) bool {
	v := d.boolPtr(m, key)
	return v != nil && *v
}

func (d *decoder) boolPtr(m map[string]any, key string) *bool {
	s, ok := m[key].(string)
	if !ok {
		if _, present := m[key]; present {
			d.errf("%s: want true or false", key)
		}
		return nil
	}
	switch s {
	case "true":
		v := true
		return &v
	case "false":
		v := false
		return &v
	}
	d.errf("%s: want true or false, got %q", key, s)
	return nil
}

func (d *decoder) list(m map[string]any, key string) []any {
	v, ok := m[key]
	if !ok {
		return nil
	}
	l, ok := v.([]any)
	if !ok {
		d.errf("%s: want a sequence", key)
		return nil
	}
	return l
}

func (d *decoder) strList(v any, key string) []string {
	l, ok := v.([]any)
	if !ok {
		d.errf("%s: want a sequence of strings", key)
		return nil
	}
	out := make([]string, 0, len(l))
	for _, it := range l {
		s, ok := it.(string)
		if !ok {
			d.errf("%s: want a sequence of strings", key)
			return nil
		}
		out = append(out, s)
	}
	return out
}

func (d *decoder) step(m map[string]any) Step {
	st := Step{
		Name:         d.str(m, "name"),
		Action:       d.str(m, "action"),
		Manifest:     d.str(m, "manifest"),
		ManifestFile: d.str(m, "manifest_file"),
		Base:         d.str(m, "base"),
		Invariant:    d.str(m, "invariant"),
		Semantic:     d.boolean(m, "semantic"),
		Platform:     d.str(m, "platform"),
		Node:         d.num(m, "node"),
		Job:          d.str(m, "job"),
		Wait:         true,
	}
	if cs, ok := m["checks"]; ok {
		st.Checks = d.strList(cs, "checks")
	}
	if w := d.boolPtr(m, "wait"); w != nil {
		st.Wait = *w
	}
	if e, ok := m["expect"]; ok {
		em, ok := e.(map[string]any)
		if !ok {
			d.errf("expect: want a mapping")
		} else {
			st.Expect = d.expect(em)
		}
	}
	d.checkKeys(m, "step", "name", "action", "manifest", "manifest_file",
		"base", "checks", "invariant", "semantic", "platform", "node",
		"job", "wait", "expect")
	return st
}

func (d *decoder) expect(m map[string]any) Expect {
	e := Expect{
		Status:     d.num(m, "status"),
		State:      d.str(m, "state"),
		Verdict:    d.str(m, "verdict"),
		ErrorClass: d.str(m, "error_class"),
		Deduped:    d.boolPtr(m, "deduped"),
		RetryAfter: d.boolPtr(m, "retry_after"),
	}
	if _, ok := m["exit_code"]; ok {
		n := d.num(m, "exit_code")
		e.ExitCode = &n
	}
	if r, ok := m["report"]; ok {
		rm, ok := r.(map[string]any)
		if !ok {
			d.errf("expect.report: want a mapping")
		} else {
			e.Report = map[string]string{}
			for k, v := range rm {
				s, ok := v.(string)
				if !ok {
					d.errf("expect.report.%s: want a scalar", k)
					continue
				}
				e.Report[k] = s
			}
		}
	}
	if mm, ok := m["metrics"]; ok {
		tm, ok := mm.(map[string]any)
		if !ok {
			d.errf("expect.metrics: want a mapping")
		} else {
			e.Metrics = map[string]int64{}
			for k, v := range tm {
				s, _ := v.(string)
				n, err := strconv.ParseInt(strings.TrimPrefix(s, "+"), 10, 64)
				if err != nil {
					d.errf("expect.metrics.%s: want an integer delta, got %q", k, s)
					continue
				}
				e.Metrics[k] = n
			}
		}
	}
	if c, ok := m["calls"]; ok {
		cm, ok := c.(map[string]any)
		if !ok {
			d.errf("expect.calls: want a mapping with min/max")
		} else {
			b := &CallBounds{Min: d.num(cm, "min"), Max: -1}
			if _, hasMax := cm["max"]; hasMax {
				b.Max = d.num(cm, "max")
			}
			e.Calls = b
			d.checkKeys(cm, "expect.calls", "min", "max")
		}
	}
	d.checkKeys(m, "expect", "status", "exit_code", "state", "verdict",
		"error_class", "deduped", "retry_after", "report", "metrics", "calls")
	return e
}

// checkKeys rejects unknown keys — a typoed expectation that silently
// checks nothing is worse than a parse error.
func (d *decoder) checkKeys(m map[string]any, ctx string, known ...string) {
	allowed := map[string]bool{}
	for _, k := range known {
		allowed[k] = true
	}
	var bad []string
	for k := range m {
		if !allowed[k] {
			bad = append(bad, k)
		}
	}
	sort.Strings(bad)
	for _, k := range bad {
		d.errf("%s: unknown key %q", ctx, k)
	}
}

// --- encode (record mode and normalization) --------------------------

// Encode renders the scenario in the exact subset parseYAML accepts, with
// deterministic field order, so recorded scenarios replay byte-for-byte.
func (sc *Scenario) Encode() string {
	w := &yamlWriter{}
	w.scalar("name", sc.Name)
	if sc.Description != "" {
		w.scalar("description", sc.Description)
	}
	w.scalar("mode", sc.Mode)
	if sc.Nodes > 0 {
		w.scalar("nodes", strconv.Itoa(sc.Nodes))
	}
	if sc.Workers > 0 {
		w.scalar("workers", strconv.Itoa(sc.Workers))
	}
	if sc.QueueDepth > 0 {
		w.scalar("queue_depth", strconv.Itoa(sc.QueueDepth))
	}
	if sc.Attempts > 0 {
		w.scalar("attempts", strconv.Itoa(sc.Attempts))
	}
	if sc.Faults != "" {
		w.scalar("faults", sc.Faults)
	}
	if len(sc.Checks) > 0 {
		w.flow("checks", sc.Checks)
	}
	w.line("steps:")
	for i := range sc.Steps {
		sc.Steps[i].encode(w)
	}
	return w.b.String()
}

func (st *Step) encode(w *yamlWriter) {
	w.indent += 2
	w.line("- name: %s", quoteIfNeeded(st.Name))
	w.indent += 2
	w.scalar("action", st.Action)
	if st.ManifestFile != "" {
		w.scalar("manifest_file", st.ManifestFile)
	} else if st.Manifest != "" {
		w.block("manifest", st.Manifest)
	}
	if st.Base != "" {
		w.scalar("base", st.Base)
	}
	if len(st.Checks) > 0 {
		w.flow("checks", st.Checks)
	}
	if st.Invariant != "" {
		w.scalar("invariant", st.Invariant)
	}
	if st.Semantic {
		w.scalar("semantic", "true")
	}
	if st.Platform != "" {
		w.scalar("platform", st.Platform)
	}
	if st.Node != 0 {
		w.scalar("node", strconv.Itoa(st.Node))
	}
	if st.Job != "" {
		w.scalar("job", st.Job)
	}
	if !st.Wait {
		w.scalar("wait", "false")
	}
	st.Expect.encode(w)
	w.indent -= 4
}

func (e *Expect) encode(w *yamlWriter) {
	if e.isZero() {
		return
	}
	w.line("expect:")
	w.indent += 2
	if e.Status != 0 {
		w.scalar("status", strconv.Itoa(e.Status))
	}
	if e.ExitCode != nil {
		w.scalar("exit_code", strconv.Itoa(*e.ExitCode))
	}
	if e.State != "" {
		w.scalar("state", e.State)
	}
	if e.Verdict != "" {
		w.scalar("verdict", e.Verdict)
	}
	if e.ErrorClass != "" {
		w.scalar("error_class", e.ErrorClass)
	}
	if e.Deduped != nil {
		w.scalar("deduped", strconv.FormatBool(*e.Deduped))
	}
	if e.RetryAfter != nil {
		w.scalar("retry_after", strconv.FormatBool(*e.RetryAfter))
	}
	if len(e.Report) > 0 {
		w.line("report:")
		w.indent += 2
		for _, k := range sortedKeys(e.Report) {
			w.scalar(k, e.Report[k])
		}
		w.indent -= 2
	}
	if len(e.Metrics) > 0 {
		w.line("metrics:")
		w.indent += 2
		for _, k := range sortedKeys(e.Metrics) {
			w.scalar(k, strconv.FormatInt(e.Metrics[k], 10))
		}
		w.indent -= 2
	}
	if e.Calls != nil {
		w.line("calls:")
		w.indent += 2
		w.scalar("min", strconv.Itoa(e.Calls.Min))
		if e.Calls.Max >= 0 {
			w.scalar("max", strconv.Itoa(e.Calls.Max))
		}
		w.indent -= 2
	}
	w.indent -= 2
}

func (e *Expect) isZero() bool {
	return e.Status == 0 && e.ExitCode == nil && e.State == "" &&
		e.Verdict == "" && e.ErrorClass == "" && e.Deduped == nil &&
		e.RetryAfter == nil && len(e.Report) == 0 && len(e.Metrics) == 0 &&
		e.Calls == nil
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
