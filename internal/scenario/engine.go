package scenario

// engine.go — the deterministic replayer. A Run boots the mode's surface
// fresh (CLI code path, one daemon, or an n-node fleet), pointed at a
// chaos package server whose fault plan and call counter are reset with
// it, then walks the steps sequentially. Determinism is by construction:
// fresh servers give stable job IDs, the burst-mode fault schedule is a
// pure function of per-path request counts, keep-alives to the package
// server are disabled so net/http cannot consume plan decisions by
// transparently replaying on a dead connection, and the solver pools are
// reset so warm state from a previous run cannot change query counts.
// Replaying a scenario twice therefore yields byte-identical summaries —
// which corpus_test enforces for every committed scenario.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/pkgdb"
	"repro/internal/service"
)

// RunOptions tunes a replay.
type RunOptions struct {
	// Record overwrites each step's checked expectations with what was
	// observed; the updated scenario is in Result.Recorded.
	Record bool
	// StepTimeout bounds one step's wait; 0 means 120s.
	StepTimeout time.Duration
}

// Result is the outcome of one replay.
type Result struct {
	Scenario string
	Mode     string
	Steps    []StepResult
	// Recorded is the scenario with observed outcomes filled in; set only
	// under RunOptions.Record.
	Recorded *Scenario
}

// StepResult is one step's expected-vs-actual outcome. Checked holds the
// "field: expected vs observed" lines for every expectation the step
// declares (equal or not); Problems holds only the mismatches.
type StepResult struct {
	Name     string
	Action   string
	Checked  []string
	Problems []string
}

// OK reports whether every step matched its expectations.
func (r *Result) OK() bool {
	for _, s := range r.Steps {
		if len(s.Problems) > 0 {
			return false
		}
	}
	return true
}

// Summary renders the deterministic expected-vs-actual report. It
// contains no timings, durations or addresses, so two replays of the
// same scenario produce byte-identical summaries.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (mode %s): %d steps\n", r.Scenario, r.Mode, len(r.Steps))
	for i, s := range r.Steps {
		verdict := "ok"
		if len(s.Problems) > 0 {
			verdict = "MISMATCH"
		}
		fmt.Fprintf(&b, "step %d %s (%s): %s\n", i+1, s.Name, s.Action, verdict)
		for _, c := range s.Checked {
			fmt.Fprintf(&b, "  %s\n", c)
		}
		for _, p := range s.Problems {
			fmt.Fprintf(&b, "  FAIL %s\n", p)
		}
	}
	if r.OK() {
		b.WriteString("result: PASS\n")
	} else {
		b.WriteString("result: FAIL\n")
	}
	return b.String()
}

// Run replays a scenario and returns its expected-vs-actual result. The
// returned error covers harness failures (bad scenario, unreachable
// server); expectation mismatches land in the Result, not the error.
func Run(sc *Scenario, opts RunOptions) (*Result, error) {
	if opts.StepTimeout <= 0 {
		opts.StepTimeout = 120 * time.Second
	}
	core.ResetSolverPools()
	env, err := newEnv(sc)
	if err != nil {
		return nil, err
	}
	defer env.close()

	res := &Result{Scenario: sc.Name, Mode: sc.Mode}
	var recorded *Scenario
	if opts.Record {
		cp := *sc
		cp.Steps = append([]Step(nil), sc.Steps...)
		recorded = &cp
	}
	for i := range sc.Steps {
		st := sc.Steps[i]
		sr, obs, err := env.runStep(&st, opts)
		if err != nil {
			return nil, fmt.Errorf("scenario %s, step %s: %w", sc.Name, st.Name, err)
		}
		res.Steps = append(res.Steps, sr)
		if recorded != nil {
			recorded.Steps[i].Expect = obs
		}
	}
	res.Recorded = recorded
	return res, nil
}

// --- environment -----------------------------------------------------

// env is one booted scenario surface.
type env struct {
	sc     *Scenario
	calls  atomic.Int64
	pkgsrv *httptest.Server
	client *pkgdb.Client

	// daemon / cluster
	svcs    []*service.Server
	ts      []*httptest.Server
	drained []bool

	// cli
	cliOpts core.Options

	// step state
	jobs map[string]submitted // step name -> job handle
}

type submitted struct {
	id   string
	node int
}

// hostRewriteTransport maps stable advertise hosts (node0.cluster, ...)
// onto the per-run listeners, so cluster ring ownership is deterministic
// across runs — the same trick the cluster tests use.
type hostRewriteTransport struct{ hosts map[string]string }

func (rt hostRewriteTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if real, ok := rt.hosts[req.URL.Host]; ok {
		clone := req.Clone(req.Context())
		clone.URL.Host = real
		clone.URL.Scheme = "http"
		return http.DefaultTransport.RoundTrip(clone)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// lateHandler gives each cluster listener a URL before the service behind
// it exists (nodes need every member's URL at construction).
type lateHandler struct{ h atomic.Pointer[http.Handler] }

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := l.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

func newEnv(sc *Scenario) (*env, error) {
	e := &env{sc: sc, jobs: map[string]submitted{}}

	// The chaos package server: catalog behind the fault middleware,
	// behind the call counter (so faulted calls count — they are exactly
	// the retries the call bounds exist to budget).
	var h http.Handler = pkgdb.Handler(pkgdb.DefaultCatalog())
	if sc.Faults != "" {
		cfg, err := faults.ParseSpec(sc.Faults)
		if err != nil {
			return nil, err
		}
		h = faults.Middleware(faults.NewPlan(cfg), h)
	}
	inner := h
	e.pkgsrv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		e.calls.Add(1)
		inner.ServeHTTP(w, r)
	}))
	e.client = pkgdb.NewClientConfig(e.pkgsrv.URL, pkgdb.ClientConfig{
		HTTPClient:   &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		Attempts:     sc.Attempts,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   5 * time.Millisecond,
	})

	switch sc.Mode {
	case ModeCLI:
		opts := core.DefaultOptions()
		opts.Provider = e.client
		e.cliOpts = opts
		return e, nil
	case ModeDaemon:
		sub, err := core.NewSubstrate(core.SubstrateConfig{Provider: e.client})
		if err != nil {
			e.pkgsrv.Close()
			return nil, err
		}
		svc, err := service.New(service.Config{
			Workers:    sc.workers(),
			QueueDepth: sc.QueueDepth,
			Substrate:  sub,
		})
		if err != nil {
			e.pkgsrv.Close()
			return nil, err
		}
		e.svcs = []*service.Server{svc}
		e.ts = []*httptest.Server{httptest.NewServer(svc.Handler())}
		e.drained = []bool{false}
		return e, nil
	case ModeCluster:
		n := sc.nodes()
		e.svcs = make([]*service.Server, n)
		e.ts = make([]*httptest.Server, n)
		e.drained = make([]bool, n)
		late := make([]*lateHandler, n)
		hosts := make(map[string]string, n)
		advertise := make([]string, n)
		for i := 0; i < n; i++ {
			late[i] = &lateHandler{}
			e.ts[i] = httptest.NewServer(late[i])
			advertise[i] = fmt.Sprintf("http://node%d.cluster", i)
			hosts[fmt.Sprintf("node%d.cluster", i)] = strings.TrimPrefix(e.ts[i].URL, "http://")
		}
		peerClient := &http.Client{
			Timeout:   5 * time.Second,
			Transport: hostRewriteTransport{hosts: hosts},
		}
		for i := 0; i < n; i++ {
			node := cluster.NewNode(advertise[i], advertise)
			node.SetHTTPClient(peerClient)
			sub, err := core.NewSubstrate(core.SubstrateConfig{
				Provider:   e.client,
				RemoteTier: node.Tier(),
			})
			if err != nil {
				e.close()
				return nil, err
			}
			svc, err := service.New(service.Config{
				Workers:    sc.workers(),
				QueueDepth: sc.QueueDepth,
				Substrate:  sub,
				Cluster:    node,
			})
			if err != nil {
				e.close()
				return nil, err
			}
			handler := svc.Handler()
			late[i].h.Store(&handler)
			e.svcs[i] = svc
		}
		return e, nil
	default:
		e.pkgsrv.Close()
		return nil, fmt.Errorf("unknown mode %q", sc.Mode)
	}
}

func (e *env) close() {
	for i, svc := range e.svcs {
		if e.ts[i] != nil {
			e.ts[i].Close()
		}
		if svc != nil && !e.drained[i] {
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			_ = svc.Shutdown(ctx)
			cancel()
		}
	}
	if e.pkgsrv != nil {
		e.pkgsrv.Close()
	}
	http.DefaultClient.CloseIdleConnections()
}

// --- step execution --------------------------------------------------

// observation is everything a step actually observed, in Expect shape.
type observation = Expect

func (e *env) runStep(st *Step, opts RunOptions) (StepResult, observation, error) {
	callsBefore := e.calls.Load()
	var metricsBefore map[string]int64
	if len(st.Expect.Metrics) > 0 && e.sc.Mode != ModeCLI {
		m, err := e.scrapeMetrics(st.Node)
		if err != nil {
			return StepResult{}, observation{}, err
		}
		metricsBefore = m
	}

	var obs observation
	var err error
	switch st.Action {
	case ActionSubmit:
		obs, err = e.doSubmit(st, opts)
	case ActionAwait:
		obs, err = e.doAwait(st, opts)
	case ActionCancel:
		obs, err = e.doCancel(st)
	case ActionDrain:
		obs, err = e.doDrain(st)
	}
	if err != nil {
		return StepResult{}, observation{}, err
	}

	// Per-step call and metric deltas close the observation window.
	delta := int(e.calls.Load() - callsBefore)
	if st.Expect.Calls != nil || opts.Record {
		obs.Calls = &CallBounds{Min: delta, Max: delta}
	}
	if len(st.Expect.Metrics) > 0 && e.sc.Mode != ModeCLI {
		after, err := e.scrapeMetrics(st.Node)
		if err != nil {
			return StepResult{}, observation{}, err
		}
		obs.Metrics = map[string]int64{}
		for name := range st.Expect.Metrics {
			obs.Metrics[name] = after[name] - metricsBefore[name]
		}
	}

	sr := StepResult{Name: st.Name, Action: st.Action}
	compare(&sr, &st.Expect, &obs)
	if opts.Record {
		return sr, recordExpect(&st.Expect, &obs), nil
	}
	return sr, obs, nil
}

// recordExpect distills an observation into the expectations a recorded
// scenario pins: the step's primary observables always (status, exit
// code, state, verdict, error class, exact call count), boolean flags
// when declared or observed true, and refreshed values for the report
// paths and metric names the author already listed. Authors widen the
// recorded exact call bounds by hand where retries may legitimately vary.
func recordExpect(declared *Expect, obs *observation) Expect {
	rec := Expect{
		Status:     obs.Status,
		ExitCode:   obs.ExitCode,
		State:      obs.State,
		Verdict:    obs.Verdict,
		ErrorClass: obs.ErrorClass,
		Calls:      obs.Calls,
	}
	if declared.Deduped != nil || (obs.Deduped != nil && *obs.Deduped) {
		rec.Deduped = obs.Deduped
	}
	if declared.RetryAfter != nil || (obs.RetryAfter != nil && *obs.RetryAfter) {
		rec.RetryAfter = obs.RetryAfter
	}
	if len(declared.Report) > 0 {
		rec.Report = map[string]string{}
		for path := range declared.Report {
			rec.Report[path] = obs.Report[path]
		}
	}
	if len(declared.Metrics) > 0 {
		rec.Metrics = obs.Metrics
	}
	return rec
}

// compare walks the declared expectations; every check lands in
// sr.Checked, mismatches additionally in sr.Problems.
func compare(sr *StepResult, want *Expect, got *observation) {
	check := func(field string, ok bool, wantV, gotV string) {
		line := fmt.Sprintf("%s: want %s, got %s", field, wantV, gotV)
		sr.Checked = append(sr.Checked, line)
		if !ok {
			sr.Problems = append(sr.Problems, line)
		}
	}
	if want.Status != 0 {
		check("status", got.Status == want.Status, strconv.Itoa(want.Status), strconv.Itoa(got.Status))
	}
	if want.ExitCode != nil {
		gotV := "none"
		ok := false
		if got.ExitCode != nil {
			gotV = strconv.Itoa(*got.ExitCode)
			ok = *got.ExitCode == *want.ExitCode
		}
		check("exit_code", ok, strconv.Itoa(*want.ExitCode), gotV)
	}
	if want.State != "" {
		check("state", got.State == want.State, want.State, orNone(got.State))
	}
	if want.Verdict != "" {
		check("verdict", got.Verdict == want.Verdict, want.Verdict, orNone(got.Verdict))
	}
	if want.ErrorClass != "" {
		check("error_class", got.ErrorClass == want.ErrorClass, want.ErrorClass, orNone(got.ErrorClass))
	}
	if want.Deduped != nil {
		gotV := false
		if got.Deduped != nil {
			gotV = *got.Deduped
		}
		check("deduped", gotV == *want.Deduped, strconv.FormatBool(*want.Deduped), strconv.FormatBool(gotV))
	}
	if want.RetryAfter != nil {
		gotV := false
		if got.RetryAfter != nil {
			gotV = *got.RetryAfter
		}
		check("retry_after", gotV == *want.RetryAfter, strconv.FormatBool(*want.RetryAfter), strconv.FormatBool(gotV))
	}
	for _, path := range sortedKeys(want.Report) {
		gotV := got.Report[path]
		check("report."+path, gotV == want.Report[path], want.Report[path], orNone(gotV))
	}
	for _, name := range sortedKeys(want.Metrics) {
		gotV := got.Metrics[name]
		check("metrics."+name, gotV == want.Metrics[name],
			strconv.FormatInt(want.Metrics[name], 10), strconv.FormatInt(gotV, 10))
	}
	if want.Calls != nil {
		gotN := 0
		if got.Calls != nil {
			gotN = got.Calls.Min
		}
		ok := gotN >= want.Calls.Min && (want.Calls.Max < 0 || gotN <= want.Calls.Max)
		wantV := fmt.Sprintf("[%d,%d]", want.Calls.Min, want.Calls.Max)
		if want.Calls.Max < 0 {
			wantV = fmt.Sprintf("[%d,∞)", want.Calls.Min)
		}
		check("calls", ok, wantV, strconv.Itoa(gotN))
	}
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// --- actions ---------------------------------------------------------

func (e *env) doSubmit(st *Step, opts RunOptions) (observation, error) {
	src, err := e.sc.manifestSource(st)
	if err != nil {
		return observation{}, err
	}
	checks := st.Checks
	if checks == nil {
		checks = e.sc.Checks
	}
	req := service.JobRequest{
		Manifest:        src,
		Platform:        st.Platform,
		Checks:          checks,
		Invariant:       st.Invariant,
		SemanticCommute: st.Semantic,
	}
	if st.Base != "" {
		req.Base = e.jobs[st.Base].id
	}

	if e.sc.Mode == ModeCLI {
		return e.cliVerify(req)
	}

	body, err := json.Marshal(req)
	if err != nil {
		return observation{}, err
	}
	resp, err := http.Post(e.ts[st.Node].URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return observation{}, err
	}
	defer resp.Body.Close()

	var obs observation
	obs.Status = resp.StatusCode
	retry := resp.Header.Get("Retry-After") != ""
	obs.RetryAfter = &retry
	if resp.StatusCode != http.StatusAccepted {
		return obs, nil
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return observation{}, err
	}
	obs.Deduped = &view.Deduped
	e.jobs[st.Name] = submitted{id: view.ID, node: st.Node}
	if st.Wait {
		final, err := e.waitTerminal(st.Node, view.ID, opts.StepTimeout)
		if err != nil {
			return observation{}, err
		}
		e.observeView(&obs, &final)
	}
	return obs, nil
}

// cliVerify drives the same entry points as `rehearsal -json`:
// BuildReport and the shared exit-code mapping, against the chaos-backed
// provider.
func (e *env) cliVerify(req service.JobRequest) (observation, error) {
	req = req.Normalize()
	var obs observation
	if err := req.Validate(); err != nil {
		code := 2
		obs.ExitCode = &code
		return obs, nil
	}
	rep := service.BuildReport(req, req.ApplyTo(e.cliOpts))
	code := service.ExitCode(rep)
	obs.ExitCode = &code
	obs.Verdict = rep.Verdict
	if rep.Error != nil {
		obs.ErrorClass = rep.Error.Class
	}
	obs.Report = reportValues(rep)
	return obs, nil
}

func (e *env) doAwait(st *Step, opts RunOptions) (observation, error) {
	job := e.jobs[st.Job]
	view, err := e.waitTerminal(st.Node, job.id, opts.StepTimeout)
	if err != nil {
		return observation{}, err
	}
	var obs observation
	obs.Status = http.StatusOK
	e.observeView(&obs, &view)
	return obs, nil
}

func (e *env) doCancel(st *Step) (observation, error) {
	job := e.jobs[st.Job]
	req, err := http.NewRequest(http.MethodDelete, e.ts[st.Node].URL+"/v1/jobs/"+job.id, nil)
	if err != nil {
		return observation{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return observation{}, err
	}
	defer resp.Body.Close()
	var obs observation
	obs.Status = resp.StatusCode
	if resp.StatusCode == http.StatusOK {
		var view service.JobView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			return observation{}, err
		}
		e.observeView(&obs, &view)
	}
	return obs, nil
}

func (e *env) doDrain(st *Step) (observation, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.svcs[st.Node].Shutdown(ctx); err != nil {
		return observation{}, err
	}
	e.drained[st.Node] = true
	return observation{}, nil
}

// observeView copies a terminal job view into the observation, with the
// report flattened so expectations can address any field by dot-path.
func (e *env) observeView(obs *observation, view *service.JobView) {
	obs.State = string(view.State)
	if view.Report != nil {
		obs.Verdict = view.Report.Verdict
		obs.Report = reportValues(view.Report)
	}
	if view.Reason != nil {
		obs.ErrorClass = view.Reason.Class
	} else if view.Report != nil && view.Report.Error != nil {
		obs.ErrorClass = view.Report.Error.Class
	}
}

func (e *env) waitTerminal(node int, id string, timeout time.Duration) (service.JobView, error) {
	deadline := time.Now().Add(timeout)
	for {
		view, status, err := e.getJob(node, id)
		if err != nil {
			return service.JobView{}, err
		}
		if status == http.StatusOK && view.State.Terminal() {
			return view, nil
		}
		if time.Now().After(deadline) {
			return service.JobView{}, fmt.Errorf("job %s not terminal after %v (state %s)", id, timeout, view.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (e *env) getJob(node int, id string) (service.JobView, int, error) {
	resp, err := http.Get(e.ts[node].URL + "/v1/jobs/" + id)
	if err != nil {
		return service.JobView{}, 0, err
	}
	defer resp.Body.Close()
	var view service.JobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			return service.JobView{}, 0, err
		}
	}
	return view, resp.StatusCode, nil
}

func (e *env) scrapeMetrics(node int) (map[string]int64, error) {
	resp, err := http.Get(e.ts[node].URL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parseMetrics(string(body)), nil
}

// parseMetrics reads integer-valued series from a Prometheus text
// exposition; non-integer samples (histogram quantiles) are skipped —
// scenario metric deltas are about counters.
func parseMetrics(scrape string) map[string]int64 {
	out := map[string]int64{}
	for _, line := range strings.Split(scrape, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			continue
		}
		out[name] = n
	}
	return out
}

// reportValues flattens a report's JSON document into dot-path -> string,
// so expectations can address any field ("determinism.ok",
// "error.class", "stats.solver_queries"). Timing fields still exist as
// paths, but a scenario that pins one fails its own determinism test.
func reportValues(rep *service.Report) map[string]string {
	raw, err := json.Marshal(rep)
	if err != nil {
		return nil
	}
	var tree any
	if err := json.Unmarshal(raw, &tree); err != nil {
		return nil
	}
	out := map[string]string{}
	flatten("", tree, out)
	return out
}

func flatten(prefix string, v any, out map[string]string) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, t[k], out)
		}
	case []any:
		for i, it := range t {
			flatten(fmt.Sprintf("%s.%d", prefix, i), it, out)
		}
	case float64:
		out[prefix] = strconv.FormatFloat(t, 'g', -1, 64)
	case bool:
		out[prefix] = strconv.FormatBool(t)
	case string:
		out[prefix] = t
	case nil:
		out[prefix] = "null"
	}
}
