package scenario

// yaml.go — a minimal YAML-subset reader. The repo is dependency-free by
// policy (go.mod has zero requires), so scenario files are written in the
// small, regular slice of YAML this parser accepts rather than pulling in
// a full YAML library:
//
//   - block mappings (`key: value`, two-space indent for nesting)
//   - block sequences (`- item`, including `- key: value` inline maps)
//   - literal block scalars (`key: |` — how manifests are embedded)
//   - flow sequences of scalars (`[a, b, c]`)
//   - double- and single-quoted strings, full-line and trailing comments
//
// Everything parses into map[string]any / []any / string; the typed
// decode in scenario.go converts scalars to ints and bools where the
// schema wants them, so the reader itself stays schema-free. Anchors,
// aliases, multi-document streams, folded scalars and flow mappings are
// deliberately rejected — scenarios that need them should not exist.

import (
	"fmt"
	"strconv"
	"strings"
)

type yamlLine struct {
	num    int // 1-based source line, for errors
	indent int
	text   string // content with indent stripped, comments removed
	raw    string // original content with indent stripped (block scalars)
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

func parseYAML(src string) (any, error) {
	p := &yamlParser{}
	for i, raw := range strings.Split(src, "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed, use spaces", i+1)
		}
		indent := len(raw) - len(strings.TrimLeft(raw, " "))
		content := raw[indent:]
		text := stripComment(content)
		p.lines = append(p.lines, yamlLine{num: i + 1, indent: indent, text: text, raw: content})
	}
	p.skipBlank()
	if p.pos >= len(p.lines) {
		return map[string]any{}, nil
	}
	v, err := p.parseBlock(p.lines[p.pos].indent)
	if err != nil {
		return nil, err
	}
	p.skipBlank()
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("yaml line %d: unexpected content %q (bad indentation?)", p.lines[p.pos].num, p.lines[p.pos].text)
	}
	return v, nil
}

// stripComment removes a trailing comment: a '#' at the start or preceded
// by a space, outside any quoted region.
func stripComment(s string) string {
	var inS, inD bool
	for i, r := range s {
		switch {
		case r == '\'' && !inD:
			inS = !inS
		case r == '"' && !inS:
			inD = !inD
		case r == '#' && !inS && !inD && (i == 0 || s[i-1] == ' '):
			return strings.TrimRight(s[:i], " ")
		}
	}
	return strings.TrimRight(s, " ")
}

func (p *yamlParser) skipBlank() {
	for p.pos < len(p.lines) && p.lines[p.pos].text == "" {
		p.pos++
	}
}

// peek returns the next structural line without consuming it.
func (p *yamlParser) peek() (yamlLine, bool) {
	save := p.pos
	p.skipBlank()
	if p.pos >= len(p.lines) {
		p.pos = save
		return yamlLine{}, false
	}
	l := p.lines[p.pos]
	p.pos = save
	return l, true
}

// parseBlock parses the sequence or mapping whose entries sit at exactly
// `ind` and stops at the first structural line with smaller indent.
func (p *yamlParser) parseBlock(ind int) (any, error) {
	l, ok := p.peek()
	if !ok || l.indent < ind {
		return "", nil
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseSequence(ind)
	}
	return p.parseMapping(ind, nil)
}

func (p *yamlParser) parseSequence(ind int) (any, error) {
	var out []any
	for {
		l, ok := p.peek()
		if !ok || l.indent != ind || (!strings.HasPrefix(l.text, "- ") && l.text != "-") {
			return out, nil
		}
		p.skipBlank()
		p.pos++ // consume the "- " line
		item := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		switch {
		case item == "":
			// `-` alone: the value is the nested block below.
			v, err := p.parseChild(ind)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		case isMappingStart(item):
			// `- key: ...`: an inline mapping whose remaining entries sit
			// two columns deeper than the dash.
			first := yamlLine{num: l.num, indent: ind + 2, text: item, raw: item}
			v, err := p.parseMapping(ind+2, &first)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		default:
			v, err := parseScalar(item, l.num)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
}

// parseMapping parses entries at exactly `ind`; `first`, when non-nil, is
// a virtual already-consumed first entry (from a `- key: value` item).
func (p *yamlParser) parseMapping(ind int, first *yamlLine) (any, error) {
	out := map[string]any{}
	handle := func(l yamlLine) error {
		key, rest, err := splitKey(l)
		if err != nil {
			return err
		}
		if _, dup := out[key]; dup {
			return fmt.Errorf("yaml line %d: duplicate key %q", l.num, key)
		}
		switch {
		case rest == "":
			v, err := p.parseChild(ind)
			if err != nil {
				return err
			}
			out[key] = v
		case rest == "|" || rest == "|-":
			v, err := p.parseBlockScalar(ind, rest == "|-")
			if err != nil {
				return err
			}
			out[key] = v
		default:
			v, err := parseScalar(rest, l.num)
			if err != nil {
				return err
			}
			out[key] = v
		}
		return nil
	}
	if first != nil {
		if err := handle(*first); err != nil {
			return nil, err
		}
	}
	for {
		l, ok := p.peek()
		if !ok || l.indent < ind {
			return out, nil
		}
		if l.indent > ind {
			return nil, fmt.Errorf("yaml line %d: unexpected indent %d (mapping is at %d)", l.num, l.indent, ind)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("yaml line %d: sequence item inside a mapping", l.num)
		}
		p.skipBlank()
		p.pos++
		if err := handle(l); err != nil {
			return nil, err
		}
	}
}

// parseChild parses the block nested under an entry at `ind`: the next
// structural line must be deeper; if it is not, the value is empty.
func (p *yamlParser) parseChild(ind int) (any, error) {
	l, ok := p.peek()
	if !ok || l.indent <= ind {
		return "", nil
	}
	return p.parseBlock(l.indent)
}

// parseBlockScalar gathers the literal block under a `key: |` entry at
// `ind`: every following line deeper than `ind` (blank lines included),
// de-indented by the block's first-line indent.
func (p *yamlParser) parseBlockScalar(ind int, strip bool) (string, error) {
	var body []string
	blockInd := -1
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.raw == "" { // blank line inside (or trailing) the block
			body = append(body, "")
			p.pos++
			continue
		}
		if l.indent <= ind {
			break
		}
		if blockInd < 0 {
			blockInd = l.indent
		}
		if l.indent < blockInd {
			return "", fmt.Errorf("yaml line %d: block scalar line dedented below its first line", l.num)
		}
		body = append(body, strings.Repeat(" ", l.indent-blockInd)+l.raw)
		p.pos++
	}
	// Trailing blank lines belong to the document, not the scalar.
	for len(body) > 0 && body[len(body)-1] == "" {
		body = body[:len(body)-1]
	}
	s := strings.Join(body, "\n")
	if !strip && s != "" {
		s += "\n" // literal style keeps exactly one final newline
	}
	return s, nil
}

// isMappingStart reports whether a sequence-item body begins a mapping
// (`key: value` or `key:`), i.e. has a colon outside quotes followed by a
// space or end of line.
func isMappingStart(s string) bool {
	var inS, inD bool
	for i, r := range s {
		switch {
		case r == '\'' && !inD:
			inS = !inS
		case r == '"' && !inS:
			inD = !inD
		case r == ':' && !inS && !inD:
			if i+1 == len(s) || s[i+1] == ' ' {
				return true
			}
		}
	}
	return false
}

func splitKey(l yamlLine) (key, rest string, err error) {
	var inS, inD bool
	for i, r := range l.text {
		switch {
		case r == '\'' && !inD:
			inS = !inS
		case r == '"' && !inS:
			inD = !inD
		case r == ':' && !inS && !inD:
			if i+1 == len(l.text) {
				return unquoteKey(l.text[:i], l.num)
			}
			if l.text[i+1] == ' ' {
				key, _, err := unquoteKey(l.text[:i], l.num)
				return key, strings.TrimSpace(l.text[i+1:]), err
			}
		}
	}
	return "", "", fmt.Errorf("yaml line %d: expected `key: value`, got %q", l.num, l.text)
}

func unquoteKey(s string, num int) (string, string, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, `"`) || strings.HasPrefix(s, "'") {
		v, err := parseScalar(s, num)
		if err != nil {
			return "", "", err
		}
		return v.(string), "", nil
	}
	return s, "", nil
}

// parseScalar interprets an inline value: flow sequence, quoted string or
// plain string. Type coercion is the typed decoder's job.
func parseScalar(s string, num int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow sequence %q", num, s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		var out []any
		for _, part := range splitFlow(inner) {
			v, err := parseScalar(part, num)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case strings.HasPrefix(s, `"`):
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("yaml line %d: bad quoted string %s: %v", num, s, err)
		}
		return v, nil
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, fmt.Errorf("yaml line %d: unterminated single-quoted string %s", num, s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	default:
		return s, nil
	}
}

// splitFlow splits a flow-sequence body on commas outside quotes.
func splitFlow(s string) []string {
	var out []string
	var inS, inD bool
	start := 0
	for i, r := range s {
		switch {
		case r == '\'' && !inD:
			inS = !inS
		case r == '"' && !inS:
			inD = !inD
		case r == ',' && !inS && !inD:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// --- writer ---------------------------------------------------------

// yamlWriter emits the same subset the reader accepts, with deterministic
// field order (the caller controls order by emission sequence). Record
// mode and scenario normalization both write through it, so a recorded
// file replays byte-identically.
type yamlWriter struct {
	b      strings.Builder
	indent int
}

func (w *yamlWriter) line(format string, args ...any) {
	w.b.WriteString(strings.Repeat(" ", w.indent))
	fmt.Fprintf(&w.b, format, args...)
	w.b.WriteByte('\n')
}

// scalar writes `key: value`, quoting the value only when the plain form
// would not round-trip.
func (w *yamlWriter) scalar(key, val string) {
	w.line("%s: %s", key, quoteIfNeeded(val))
}

// block writes `key: |` with the literal body indented one level deeper.
func (w *yamlWriter) block(key, body string) {
	w.line("%s: |", key)
	pad := strings.Repeat(" ", w.indent+2)
	for _, l := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if l == "" {
			w.b.WriteByte('\n')
			continue
		}
		w.b.WriteString(pad)
		w.b.WriteString(l)
		w.b.WriteByte('\n')
	}
}

// flow writes `key: [a, b, c]`.
func (w *yamlWriter) flow(key string, vals []string) {
	q := make([]string, len(vals))
	for i, v := range vals {
		q[i] = quoteIfNeeded(v)
	}
	w.line("%s: [%s]", key, strings.Join(q, ", "))
}

func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	plain := !strings.ContainsAny(s, ":#\"'[]{}\n\t") &&
		s == strings.TrimSpace(s) &&
		!strings.HasPrefix(s, "-") &&
		!strings.HasPrefix(s, "|")
	if plain {
		return s
	}
	return strconv.Quote(s)
}
