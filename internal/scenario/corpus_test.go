package scenario

// The committed corpus under scenarios/ is the repo's end-to-end
// robustness contract: every file must replay green, twice, with
// byte-identical expected-vs-actual summaries, without leaking a
// goroutine or descriptor. CI runs this under -race.

import (
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/leakcheck"
)

func corpusFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("corpus too small: %d scenarios, want the fault-injection, warm-cache, drain and cluster smokes at least", len(files))
	}
	sort.Strings(files)
	return files
}

func TestCorpusReplaysGreenAndDeterministic(t *testing.T) {
	for _, path := range corpusFiles(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			base := leakcheck.Take()
			sc, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			first, err := Run(sc, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !first.OK() {
				t.Fatalf("replay failed:\n%s", first.Summary())
			}
			second, err := Run(sc, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if first.Summary() != second.Summary() {
				t.Fatalf("replays not byte-identical:\n--- first ---\n%s\n--- second ---\n%s",
					first.Summary(), second.Summary())
			}
			leakcheck.AssertOpts(t, base, leakcheck.Opts{Timeout: 10e9})
		})
	}
}

// The corpus must stay inside the subset Encode emits: a normalization
// round-trip through the writer must not change what replaying sees.
func TestCorpusEncodeRoundTrips(t *testing.T) {
	for _, path := range corpusFiles(t) {
		sc, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		back, err := Parse(sc.Encode())
		if err != nil {
			t.Fatalf("%s: writer output does not parse: %v", path, err)
		}
		if back.Encode() != sc.Encode() {
			t.Fatalf("%s: encode is not a fixed point", path)
		}
	}
}
