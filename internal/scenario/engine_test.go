package scenario

// Engine tests: scenarios must replay deterministically (byte-identical
// summaries), detect mismatches rather than paper over them, record live
// runs into replayable files, and leak nothing — every Run boots and
// tears down real HTTP servers, so each test is also a leak test.

import (
	"strings"
	"testing"

	"repro/internal/leakcheck"
)

const daemonScenario = `
name: engine-daemon
mode: daemon
workers: 2
steps:
  - name: verify ok manifest
    action: submit
    manifest: |
      package {'ntp': ensure => present }
      file {'/etc/ntp.conf': content => 'server pool.ntp.org', require => Package['ntp'] }
    expect:
      status: 202
      state: done
      verdict: pass
      report:
        determinism.ok: "true"
      metrics:
        rehearsald_jobs_submitted_total: 1
        rehearsald_jobs_done_total: 1
      calls:
        min: 1
  - name: resubmit dedups
    action: submit
    manifest: |
      package {'ntp': ensure => present }
      file {'/etc/ntp.conf': content => 'server pool.ntp.org', require => Package['ntp'] }
    expect:
      status: 202
      state: done
      deduped: true
      calls:
        min: 0
        max: 0
  - name: drain
    action: drain
  - name: rejected while draining
    action: submit
    manifest: |
      package {'git': ensure => present }
    expect:
      status: 503
      retry_after: true
      metrics:
        rehearsald_drain_rejects_total: 1
`

func mustParse(t *testing.T, src string) *Scenario {
	t.Helper()
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestEngineDaemonScenario(t *testing.T) {
	base := leakcheck.Take()
	sc := mustParse(t, daemonScenario)
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("scenario failed:\n%s", res.Summary())
	}
	leakcheck.Assert(t, base)
}

// Replaying the same scenario twice must yield byte-identical summaries —
// the property the committed corpus depends on.
func TestEngineReplayDeterministic(t *testing.T) {
	sc := mustParse(t, daemonScenario)
	first, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Summary() != second.Summary() {
		t.Fatalf("summaries differ between replays:\n--- first ---\n%s\n--- second ---\n%s",
			first.Summary(), second.Summary())
	}
}

func TestEngineDetectsMismatch(t *testing.T) {
	sc := mustParse(t, `
name: engine-mismatch
mode: daemon
steps:
  - name: wrong verdict pinned
    action: submit
    manifest: |
      package {'ntp': ensure => present }
    expect:
      verdict: fail
`)
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatalf("mismatch not detected:\n%s", res.Summary())
	}
	if !strings.Contains(res.Summary(), "FAIL verdict: want fail, got pass") {
		t.Fatalf("summary should name the mismatch:\n%s", res.Summary())
	}
}

func TestEngineCLIMode(t *testing.T) {
	base := leakcheck.Take()
	sc := mustParse(t, `
name: engine-cli
mode: cli
steps:
  - name: clean manifest exits 0
    action: submit
    manifest: |
      package {'ntp': ensure => present }
      file {'/etc/ntp.conf': content => 'server pool.ntp.org', require => Package['ntp'] }
    expect:
      exit_code: 0
      verdict: pass
  - name: nondeterministic manifest exits 1
    action: submit
    manifest: |
      package {'ntp': ensure => present }
      file {'/etc/ntp.conf': content => 'server pool.ntp.org' }
    expect:
      exit_code: 1
      verdict: fail
      report:
        determinism.ok: "false"
  - name: dependency cycle exits 1 with manifest class
    action: submit
    manifest: |
      package {'ntp': ensure => present, require => Package['git'] }
      package {'git': ensure => present, require => Package['ntp'] }
    expect:
      exit_code: 1
      verdict: fail
      error_class: manifest
`)
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("cli scenario failed:\n%s", res.Summary())
	}
	leakcheck.Assert(t, base)
}

// Chaos within the retry budget: the job still passes, and the call
// counter shows the faults actually fired (more calls than fault-free).
func TestEngineFaultsWithinBudget(t *testing.T) {
	sc := mustParse(t, `
name: engine-faults
mode: daemon
attempts: 4
faults: seed=42,burst=2,kinds=status+reset+truncate+corrupt
steps:
  - name: verify under chaos
    action: submit
    manifest: |
      package {'ntp': ensure => present }
      file {'/etc/ntp.conf': content => 'server pool.ntp.org', require => Package['ntp'] }
    expect:
      status: 202
      state: done
      verdict: pass
      calls:
        min: 3
`)
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("chaos scenario failed:\n%s", res.Summary())
	}
}

// Record mode: run an expectation-free scenario, write what happened,
// and the recorded file must parse and replay green — twice, with
// byte-identical summaries.
func TestEngineRecordThenReplay(t *testing.T) {
	sc := mustParse(t, `
name: engine-record
mode: daemon
steps:
  - name: first sight
    action: submit
    manifest: |
      package {'ntp': ensure => present }
      file {'/etc/ntp.conf': content => 'server pool.ntp.org', require => Package['ntp'] }
  - name: warm resubmit
    action: submit
    manifest: |
      package {'ntp': ensure => present }
      file {'/etc/ntp.conf': content => 'server pool.ntp.org', require => Package['ntp'] }
`)
	rec, err := Run(sc, RunOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Recorded == nil {
		t.Fatal("record mode returned no scenario")
	}
	text := rec.Recorded.Encode()
	replayable, err := Parse(text)
	if err != nil {
		t.Fatalf("recorded scenario does not parse: %v\n%s", err, text)
	}
	if e := replayable.Steps[0].Expect; e.Status != 202 || e.State != "done" || e.Verdict != "pass" || e.Calls == nil {
		t.Fatalf("recorded expectations incomplete: %+v\n%s", e, text)
	}
	if e := replayable.Steps[1].Expect; e.Deduped == nil || !*e.Deduped || e.Calls == nil || e.Calls.Max != 0 {
		t.Fatalf("recorded dedup step should pin deduped + zero calls: %+v\n%s", e, text)
	}
	one, err := Run(replayable, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !one.OK() {
		t.Fatalf("recorded scenario does not replay green:\n%s", one.Summary())
	}
	two, err := Run(replayable, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if one.Summary() != two.Summary() {
		t.Fatalf("recorded replays differ:\n%s\nvs\n%s", one.Summary(), two.Summary())
	}
}
