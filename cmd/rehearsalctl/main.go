// Command rehearsalctl operates a rehearsald cluster from the terminal.
//
// Usage:
//
//	rehearsalctl [-node URL] <command> [args]
//
// Commands:
//
//	status                ring membership as seen by -node (self, members,
//	                      dead peers)
//	peer-add URL          add a peer to -node's ring
//	peer-remove URL       remove a peer from -node's ring
//	stats                 cache and routing counters aggregated across every
//	                      ring member (per-node rows + fleet totals)
//
// Membership commands change one node's view; run them against each member
// (or script them) to keep views aligned — the ring tolerates brief
// disagreement by construction (routed requests are never re-routed, and a
// mis-owned lookup is just a miss).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

func main() {
	node := flag.String("node", "http://localhost:8374", "URL of any cluster member to talk to")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: rehearsalctl [-node URL] status | peer-add URL | peer-remove URL | stats\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	c := &ctl{base: cluster.NormalizeURL(*node), client: &http.Client{Timeout: *timeout}}
	var err error
	switch cmd, args := flag.Arg(0), flag.Args(); cmd {
	case "status":
		err = c.status()
	case "peer-add":
		if len(args) != 2 {
			usageFatal("peer-add needs exactly one URL")
		}
		err = c.peerAdd(args[1])
	case "peer-remove":
		if len(args) != 2 {
			usageFatal("peer-remove needs exactly one URL")
		}
		err = c.peerRemove(args[1])
	case "stats":
		err = c.stats()
	case "":
		usageFatal("missing command")
	default:
		usageFatal(fmt.Sprintf("unknown command %q", cmd))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rehearsalctl: %v\n", err)
		os.Exit(1)
	}
}

func usageFatal(msg string) {
	fmt.Fprintf(os.Stderr, "rehearsalctl: %s\n", msg)
	flag.Usage()
	os.Exit(2)
}

type ctl struct {
	base   string
	client *http.Client
}

// getJSON decodes a JSON response from one node into out.
func (c *ctl) getJSON(node, path string, out any) error {
	resp, err := c.client.Get(node + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s%s: %s: %s", node, path, resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *ctl) ring() (cluster.RingInfo, error) {
	var info cluster.RingInfo
	err := c.getJSON(c.base, "/v1/ring", &info)
	return info, err
}

func printRing(info cluster.RingInfo) {
	dead := map[string]bool{}
	for _, d := range info.Dead {
		dead[d] = true
	}
	fmt.Printf("ring of %d member(s), as seen by %s:\n", len(info.Members), info.Self)
	for _, m := range info.Members {
		mark := "  "
		switch {
		case m == info.Self:
			mark = "* " // the node answering
		case dead[m]:
			mark = "! " // in dead-peer cooldown
		}
		fmt.Printf("  %s%s\n", mark, m)
	}
	if len(info.Dead) > 0 {
		fmt.Printf("  (! = dead peer: skipped until its cooldown expires)\n")
	}
}

func (c *ctl) status() error {
	info, err := c.ring()
	if err != nil {
		return err
	}
	printRing(info)
	return nil
}

func (c *ctl) peerAdd(url string) error {
	body, _ := json.Marshal(map[string]string{"url": url})
	resp, err := c.client.Post(c.base+"/v1/ring/peers", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var info cluster.RingInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return err
	}
	printRing(info)
	return nil
}

func (c *ctl) peerRemove(url string) error {
	req, err := http.NewRequest(http.MethodDelete,
		c.base+"/v1/ring/peers?url="+url, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var info cluster.RingInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return err
	}
	printRing(info)
	return nil
}

func (c *ctl) stats() error {
	info, err := c.ring()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tMEM HITS\tMISSES\tDISK HITS\tRING HITS\tRING PUTS\tROUTED\tPROXIED\tFALLBACKS\tJOBS DONE")
	var total service.ClusterStats
	reached := 0
	for _, m := range info.Members {
		var st service.ClusterStats
		if err := c.getJSON(m, "/v1/cluster/stats", &st); err != nil {
			fmt.Fprintf(tw, "%s\tunreachable: %v\n", m, err)
			continue
		}
		reached++
		var remoteHits, remotePuts int64
		if st.Remote != nil {
			remoteHits, remotePuts = st.Remote.Hits, st.Remote.Puts
		}
		var diskHits int64
		if st.Disk != nil {
			diskHits = st.Disk.Hits
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			m, st.Qcache.Hits, st.Qcache.Misses, diskHits, remoteHits, remotePuts,
			st.RoutedLocal, st.RoutedProxied, st.ProxyFallbacks, st.Jobs["done"])
		total.Qcache.Hits += st.Qcache.Hits
		total.Qcache.Misses += st.Qcache.Misses
		total.RoutedLocal += st.RoutedLocal
		total.RoutedProxied += st.RoutedProxied
		total.ProxyFallbacks += st.ProxyFallbacks
		if st.Remote != nil {
			total.Qcache.RemoteHits += st.Remote.Hits
		}
	}
	tw.Flush()
	if reached == 0 {
		return fmt.Errorf("no cluster member reachable")
	}
	fmt.Printf("fleet: %d/%d nodes, %d memory hits, %d misses, %d ring hits, %d routed local, %d proxied, %d fallbacks\n",
		reached, len(info.Members), total.Qcache.Hits, total.Qcache.Misses,
		total.Qcache.RemoteHits, total.RoutedLocal, total.RoutedProxied, total.ProxyFallbacks)
	return nil
}
