// Command rehearsal-load soaks an in-process rehearsald with a seeded
// zipfian job mix at a fixed request rate and enforces the service's
// robustness SLOs: per-round-type p50/p99 latency budgets, zero
// goroutine and file-descriptor growth across the whole run, and a
// bounded heap — all via the same leakcheck oracle the service tests
// use. Results land in a machine-readable BENCH_soak.json.
//
// The mix models a real site's traffic: manifest popularity is zipfian
// (a few role manifests dominate), and each request is classified by
// the work the daemon can avoid:
//
//	cold      first sight of this manifest — full verify, solver work
//	warm      reworded popular manifest (new digest, same resources) —
//	          semantic verdicts answered from the substrate cache
//	resubmit  byte-identical re-submission — answered by the
//	          scheduler's dedup/result layer, no engine work
//
// Submissions go over real HTTP (exercising admission control and the
// handlers); completion is observed via the job's Done channel, so
// latencies are scheduler-true, not poll-quantized.
//
//	rehearsal-load -duration 30s -rps 25 -out BENCH_soak.json
//
// Exit codes: 0 all SLOs and leak checks passed, 1 a budget or leak
// check failed, 2 harness error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/pkgdb"
	"repro/internal/service"
)

func main() { os.Exit(run(os.Args[1:])) }

type config struct {
	duration   time.Duration
	rps        float64
	seed       int64
	pool       int
	warmFrac   float64
	workers    int
	queueDepth int
	heapBudget uint64
	out        string

	slo map[string]sloBudget // per round type, milliseconds
}

type sloBudget struct {
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

var roundTypes = []string{"cold", "warm", "resubmit"}

func run(args []string) int {
	fs := flag.NewFlagSet("rehearsal-load", flag.ContinueOnError)
	cfg := config{slo: map[string]sloBudget{}}
	fs.DurationVar(&cfg.duration, "duration", 30*time.Second, "soak length")
	fs.Float64Var(&cfg.rps, "rps", 25, "fixed submission rate (requests/second, open loop)")
	fs.Int64Var(&cfg.seed, "seed", 1, "zipf and mix seed")
	fs.IntVar(&cfg.pool, "pool", 16, "distinct manifests in the zipfian pool")
	fs.Float64Var(&cfg.warmFrac, "warm-frac", 0.3, "fraction of repeat sightings reworded into warm (cache-path) jobs")
	fs.IntVar(&cfg.workers, "workers", 4, "daemon verification workers")
	fs.IntVar(&cfg.queueDepth, "queue-depth", 256, "daemon admission queue depth")
	heapMB := fs.Int("heap-budget-mb", 64, "allowed post-GC heap growth over the run, MiB")
	fs.StringVar(&cfg.out, "out", "BENCH_soak.json", "result file")
	sloFlags := map[string][2]*int{}
	defaults := map[string][2]int{"cold": {1500, 4000}, "warm": {1000, 3000}, "resubmit": {500, 2000}}
	for _, rt := range roundTypes {
		d := defaults[rt]
		sloFlags[rt] = [2]*int{
			fs.Int("slo-"+rt+"-p50", d[0], rt+" round p50 budget, ms"),
			fs.Int("slo-"+rt+"-p99", d[1], rt+" round p99 budget, ms"),
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if cfg.pool < 2 || cfg.rps <= 0 || cfg.duration <= 0 {
		fmt.Fprintln(os.Stderr, "rehearsal-load: need -pool >= 2, -rps > 0, -duration > 0")
		return 2
	}
	cfg.heapBudget = uint64(*heapMB) << 20
	for _, rt := range roundTypes {
		cfg.slo[rt] = sloBudget{P50MS: float64(*sloFlags[rt][0]), P99MS: float64(*sloFlags[rt][1])}
	}

	rep, err := soak(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rehearsal-load: %v\n", err)
		return 2
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rehearsal-load: %v\n", err)
		return 2
	}
	if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rehearsal-load: %v\n", err)
		return 2
	}
	fmt.Print(rep.summary())
	if !rep.Pass {
		return 1
	}
	return 0
}

// --- workload ---------------------------------------------------------

// soakWindow is the number of packages per manifest; 2 gives each cold
// manifest exactly one fresh semantic-commutativity query, so cold
// rounds do solver work and warm rounds provably skip it.
const soakWindow = 2

// workload builds the manifest pool and the catalog serving it: pool
// sliding two-package windows over shared svc packages, all depending
// on a common library so neighboring manifests overlap the way a real
// site's role manifests do.
func workload(pool int) ([]string, pkgdb.Provider) {
	catalog := pkgdb.NewCatalog()
	lib := &pkgdb.Package{Name: "libcommon", Version: "1.0"}
	for i := 0; i < 16; i++ {
		lib.Files = append(lib.Files, fmt.Sprintf("/usr/lib/libcommon/lib%03d", i))
	}
	catalog.Add("ubuntu", lib)
	for i := 1; i <= pool+soakWindow; i++ {
		name := fmt.Sprintf("svc-%d", i)
		p := &pkgdb.Package{Name: name, Version: "1.0", Depends: []string{"libcommon"}}
		for j := 0; j < 4; j++ {
			p.Files = append(p.Files, fmt.Sprintf("/usr/lib/%s/lib%03d", name, j))
		}
		catalog.Add("ubuntu", p)
	}
	manifests := make([]string, pool)
	for i := range manifests {
		m := ""
		for j := 0; j < soakWindow; j++ {
			m += fmt.Sprintf("package {'svc-%d': ensure => present }\n", 1+(i+j)%(pool+soakWindow))
		}
		manifests[i] = m
	}
	return manifests, catalog
}

// request is one scheduled submission.
type request struct {
	kind string // cold | warm | resubmit
	body string
}

// schedule precomputes the whole seeded mix so the pacer does no RNG
// work on the hot path and a given (seed, rps, duration, pool) always
// replays the same traffic.
func schedule(cfg config, manifests []string) []request {
	n := int(cfg.rps * cfg.duration.Seconds())
	rng := rand.New(rand.NewSource(cfg.seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(manifests)-1))
	seen := make(map[uint64]bool, len(manifests))
	reqs := make([]request, 0, n)
	warms := 0
	for i := 0; i < n; i++ {
		idx := zipf.Uint64()
		switch {
		case !seen[idx]:
			seen[idx] = true
			reqs = append(reqs, request{kind: "cold", body: manifests[idx]})
		case rng.Float64() < cfg.warmFrac:
			// A reworded re-sighting: new digest (no dedup), same resource
			// set, so its semantic queries hit the substrate cache.
			warms++
			reqs = append(reqs, request{
				kind: "warm",
				body: fmt.Sprintf("# warm variant %d\n%s", warms, manifests[idx]),
			})
		default:
			reqs = append(reqs, request{kind: "resubmit", body: manifests[idx]})
		}
	}
	return reqs
}

// --- the soak ---------------------------------------------------------

// sample is one completed (or rejected) request's observation.
type sample struct {
	kind     string
	latency  time.Duration
	rejected bool // 429/503 at admission
	failed   bool // terminal state other than done/pass
}

func soak(cfg config) (*soakReport, error) {
	// Touch the network once before the baseline: the runtime's poller
	// lazily opens two descriptors (epoll + eventfd) on first use and
	// keeps them for the process's life — absorb them into the base so
	// the fd gate measures the workload, not runtime initialization.
	if ln, err := net.Listen("tcp", "127.0.0.1:0"); err == nil {
		ln.Close()
	}
	base := leakcheck.Take()

	manifests, provider := workload(cfg.pool)
	reqs := schedule(cfg, manifests)

	core.ResetSolverPools()
	sub, err := core.NewSubstrate(core.SubstrateConfig{Provider: provider})
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Parallelism = 1 // service-level parallelism is what the soak loads
	svc, err := service.New(service.Config{
		Workers:     cfg.workers,
		QueueDepth:  cfg.queueDepth,
		JobTimeout:  time.Minute,
		Substrate:   sub,
		BaseOptions: &opts,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(svc.Handler())
	transport := &http.Transport{MaxIdleConnsPerHost: 2 * cfg.workers}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	// Open-loop pacing: fire at fixed intervals regardless of completions,
	// so a slow daemon shows up as latency (and eventually 429s), exactly
	// as production load would surface it.
	interval := time.Duration(float64(time.Second) / cfg.rps)
	samples := make([]sample, len(reqs))
	var wg sync.WaitGroup
	start := time.Now()
	tick := time.NewTicker(interval)
	for i := range reqs {
		if i > 0 {
			<-tick.C
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			samples[i] = submit(svc, ts.URL, client, reqs[i])
		}(i)
	}
	tick.Stop()
	wg.Wait()
	elapsed := time.Since(start)

	shutdownCtx, cancel := shutdownContext()
	err = svc.Shutdown(shutdownCtx)
	cancel()
	ts.Close()
	transport.CloseIdleConnections()
	if err != nil {
		return nil, fmt.Errorf("shutdown after soak: %w", err)
	}

	// The leak gate: after a full drain the process must be back at its
	// pre-boot goroutine and fd counts, and the post-GC heap within
	// budget — minutes of traffic must not accrete anything.
	runtime.GC()
	leaks := leakReport{
		GoroutinesBefore: base.Goroutines,
		FDsBefore:        base.FDs,
		HeapBudgetBytes:  cfg.heapBudget,
		OK:               true,
	}
	settleErr := leakcheck.Settle(base, leakcheck.Opts{
		HeapBudget: cfg.heapBudget,
		Timeout:    15 * time.Second,
	})
	now := leakcheck.Take()
	leaks.GoroutinesAfter = now.Goroutines
	leaks.FDsAfter = now.FDs
	leaks.HeapGrowthBytes = int64(now.HeapBytes) - int64(base.HeapBytes)
	if settleErr != nil {
		leaks.OK = false
		leaks.Detail = settleErr.Error()
	}

	return build(cfg, reqs, samples, elapsed, leaks), nil
}

func shutdownContext() (ctx context.Context, cancel context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}

// submit posts one job and waits for its terminal state via the job's
// Done channel (no polling), returning the client-observed latency.
func submit(svc *service.Server, url string, client *http.Client, r request) sample {
	req := service.JobRequest{
		Manifest:        r.body,
		SemanticCommute: true,
		Checks:          []string{service.CheckDeterminism},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return sample{kind: r.kind, failed: true}
	}
	t0 := time.Now()
	resp, err := client.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{kind: r.kind, failed: true}
	}
	var view service.JobView
	decErr := json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted, http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return sample{kind: r.kind, rejected: true}
	default:
		return sample{kind: r.kind, failed: true}
	}
	if decErr != nil || view.ID == "" {
		return sample{kind: r.kind, failed: true}
	}
	job, ok := svc.Job(view.ID)
	if !ok {
		return sample{kind: r.kind, failed: true}
	}
	<-job.Done()
	lat := time.Since(t0)
	rep := job.Report()
	failed := rep == nil || rep.Verdict != service.VerdictPass
	return sample{kind: r.kind, latency: lat, failed: failed}
}

// --- reporting --------------------------------------------------------

type roundStats struct {
	Count       int     `json:"count"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	SLOP50MS    float64 `json:"slo_p50_ms"`
	SLOP99MS    float64 `json:"slo_p99_ms"`
	P50MarginMS float64 `json:"p50_margin_ms"` // budget minus observed; negative = violated
	P99MarginMS float64 `json:"p99_margin_ms"`
	OK          bool    `json:"ok"`
}

type leakReport struct {
	GoroutinesBefore int    `json:"goroutines_before"`
	GoroutinesAfter  int    `json:"goroutines_after"`
	FDsBefore        int    `json:"fds_before"`
	FDsAfter         int    `json:"fds_after"`
	HeapGrowthBytes  int64  `json:"heap_growth_bytes"`
	HeapBudgetBytes  uint64 `json:"heap_budget_bytes"`
	OK               bool   `json:"ok"`
	Detail           string `json:"detail,omitempty"`
}

type soakConfig struct {
	DurationS  float64 `json:"duration_s"`
	TargetRPS  float64 `json:"target_rps"`
	Seed       int64   `json:"seed"`
	Pool       int     `json:"pool"`
	WarmFrac   float64 `json:"warm_frac"`
	Workers    int     `json:"workers"`
	QueueDepth int     `json:"queue_depth"`
	HostCPUs   int     `json:"host_cpus"`
}

type soakReport struct {
	Benchmark   string                `json:"benchmark"`
	Config      soakConfig            `json:"config"`
	Submitted   int                   `json:"submitted"`
	Completed   int                   `json:"completed"`
	Rejected    int                   `json:"rejected"`
	Failed      int                   `json:"failed"`
	AchievedRPS float64               `json:"achieved_rps"`
	Rounds      map[string]roundStats `json:"rounds"`
	Leaks       leakReport            `json:"leaks"`
	Pass        bool                  `json:"pass"`
}

func build(cfg config, reqs []request, samples []sample, elapsed time.Duration, leaks leakReport) *soakReport {
	rep := &soakReport{
		Benchmark: "BenchmarkSoakFixedRPS",
		Config: soakConfig{
			DurationS:  cfg.duration.Seconds(),
			TargetRPS:  cfg.rps,
			Seed:       cfg.seed,
			Pool:       cfg.pool,
			WarmFrac:   cfg.warmFrac,
			Workers:    cfg.workers,
			QueueDepth: cfg.queueDepth,
			HostCPUs:   runtime.NumCPU(),
		},
		Submitted: len(reqs),
		Rounds:    map[string]roundStats{},
		Leaks:     leaks,
	}
	lats := map[string][]time.Duration{}
	for _, s := range samples {
		switch {
		case s.rejected:
			rep.Rejected++
		case s.failed:
			rep.Failed++
		default:
			rep.Completed++
			lats[s.kind] = append(lats[s.kind], s.latency)
		}
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(rep.Completed) / elapsed.Seconds()
	}
	rep.Pass = rep.Rejected == 0 && rep.Failed == 0 && leaks.OK
	for _, rt := range roundTypes {
		ls := lats[rt]
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		budget := cfg.slo[rt]
		rs := roundStats{
			Count:    len(ls),
			P50MS:    quantileMS(ls, 0.50),
			P99MS:    quantileMS(ls, 0.99),
			SLOP50MS: budget.P50MS,
			SLOP99MS: budget.P99MS,
		}
		rs.P50MarginMS = rs.SLOP50MS - rs.P50MS
		rs.P99MarginMS = rs.SLOP99MS - rs.P99MS
		rs.OK = rs.P50MarginMS >= 0 && rs.P99MarginMS >= 0
		if !rs.OK {
			rep.Pass = false
		}
		rep.Rounds[rt] = rs
	}
	return rep
}

func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

func (r *soakReport) summary() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "soak: %d submitted, %d completed, %d rejected, %d failed, %.1f req/s achieved (target %.1f)\n",
		r.Submitted, r.Completed, r.Rejected, r.Failed, r.AchievedRPS, r.Config.TargetRPS)
	for _, rt := range roundTypes {
		rs := r.Rounds[rt]
		verdict := "ok"
		if !rs.OK {
			verdict = "SLO VIOLATED"
		}
		fmt.Fprintf(&b, "  %-8s n=%-5d p50 %7.1fms (budget %7.1fms)  p99 %7.1fms (budget %7.1fms)  %s\n",
			rt, rs.Count, rs.P50MS, rs.SLOP50MS, rs.P99MS, rs.SLOP99MS, verdict)
	}
	leak := "ok"
	if !r.Leaks.OK {
		leak = "LEAKED"
	}
	fmt.Fprintf(&b, "  leaks: goroutines %d → %d, fds %d → %d, heap %+d bytes (budget %d)  %s\n",
		r.Leaks.GoroutinesBefore, r.Leaks.GoroutinesAfter,
		r.Leaks.FDsBefore, r.Leaks.FDsAfter,
		r.Leaks.HeapGrowthBytes, r.Leaks.HeapBudgetBytes, leak)
	if r.Pass {
		b.WriteString("result: PASS\n")
	} else {
		b.WriteString("result: FAIL\n")
	}
	return b.String()
}
