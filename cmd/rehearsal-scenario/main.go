// Command rehearsal-scenario replays declarative YAML scenarios against
// an in-process rehearsal surface (CLI code path, daemon, or cluster) and
// reports expected-vs-actual, or records a live run into a replayable
// scenario file.
//
//	rehearsal-scenario scenarios/*.yaml          replay, print summaries
//	rehearsal-scenario -record skeleton.yaml     run + pin observations
//	rehearsal-scenario -record -o s.yaml sk.yaml ... writing the result
//
// Exit codes: 0 every scenario replayed green, 1 at least one mismatch,
// 2 usage or harness error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/scenario"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("rehearsal-scenario", flag.ContinueOnError)
	record := fs.Bool("record", false, "record mode: run the scenario and write it back with observed expectations pinned")
	out := fs.String("o", "", "record mode: output file (default stdout)")
	timeout := fs.Duration("step-timeout", 2*time.Minute, "per-step wait bound")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "rehearsal-scenario: no scenario files given")
		fs.Usage()
		return 2
	}
	if *record && len(files) != 1 {
		fmt.Fprintln(os.Stderr, "rehearsal-scenario: -record takes exactly one scenario")
		return 2
	}

	exit := 0
	for _, path := range files {
		sc, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rehearsal-scenario: %v\n", err)
			return 2
		}
		res, err := scenario.Run(sc, scenario.RunOptions{Record: *record, StepTimeout: *timeout})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rehearsal-scenario: %s: %v\n", path, err)
			return 2
		}
		if *record {
			text := res.Recorded.Encode()
			if *out == "" {
				fmt.Print(text)
			} else if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "rehearsal-scenario: %v\n", err)
				return 2
			}
			fmt.Fprintf(os.Stderr, "recorded %s (%d steps)\n", sc.Name, len(sc.Steps))
			continue
		}
		fmt.Print(res.Summary())
		if !res.OK() {
			exit = 1
		}
	}
	return exit
}
