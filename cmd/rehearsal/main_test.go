package main

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/pkgdb"
	"repro/internal/service"
)

// runCapture invokes run with the given args, capturing stdout.
func runCapture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run(args)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return code, string(out)
}

func writeManifest(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "site.pp")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const okManifest = `
package {'ntp': ensure => present }
file {'/etc/ntp.conf': content => 'server pool.ntp.org', require => Package['ntp'] }
`

const buggyManifest = `
package {'ntp': ensure => present }
file {'/etc/ntp.conf': content => 'server pool.ntp.org' }
`

func TestVerifyOK(t *testing.T) {
	code, out := runCapture(t, writeManifest(t, okManifest))
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	for _, want := range []string{"determinism: OK", "idempotence: OK", "loaded 2 resources"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestVerifyNondeterministic(t *testing.T) {
	code, out := runCapture(t, writeManifest(t, buggyManifest))
	if code != 1 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	for _, want := range []string{"determinism: FAIL", "order A", "order B", "initial state"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestVerboseStats(t *testing.T) {
	code, out := runCapture(t, "-v", writeManifest(t, okManifest))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "resources=2") || !strings.Contains(out, "sequences=") {
		t.Errorf("missing stats in:\n%s", out)
	}
}

func TestDotOutput(t *testing.T) {
	code, out := runCapture(t, "-dot", writeManifest(t, okManifest))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "Package[ntp]") {
		t.Errorf("dot output:\n%s", out)
	}
}

func TestInvariantFlag(t *testing.T) {
	code, out := runCapture(t,
		"-invariant", "/etc/ntp.conf=server pool.ntp.org",
		writeManifest(t, okManifest))
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "invariant /etc/ntp.conf=server pool.ntp.org: OK") {
		t.Errorf("missing invariant result:\n%s", out)
	}
	// A violated invariant exits nonzero.
	code, out = runCapture(t,
		"-invariant", "/etc/ntp.conf=some other content",
		writeManifest(t, okManifest))
	if code != 1 || !strings.Contains(out, "FAIL") {
		t.Errorf("violated invariant: exit %d output:\n%s", code, out)
	}
	// Malformed invariant flag.
	code, _ = runCapture(t, "-invariant", "missing-equals", writeManifest(t, okManifest))
	if code != 2 {
		t.Errorf("malformed invariant: exit %d", code)
	}
}

func TestSkipIdempotence(t *testing.T) {
	code, out := runCapture(t, "-skip-idempotence", writeManifest(t, okManifest))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, "idempotence") {
		t.Errorf("idempotence should be skipped:\n%s", out)
	}
}

func TestPlatformFlag(t *testing.T) {
	src := `
case $operatingsystem {
  'Ubuntu': { package {'apache2': } }
  'CentOS': { package {'httpd': } }
}
`
	code, out := runCapture(t, "-platform", "centos", "-dot", writeManifest(t, src))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if !strings.Contains(out, "Package[httpd]") || strings.Contains(out, "apache2") {
		t.Errorf("platform dispatch wrong:\n%s", out)
	}
}

func TestAblationFlags(t *testing.T) {
	code, out := runCapture(t,
		"-no-commutativity", "-no-elimination", "-no-pruning", "-v",
		writeManifest(t, okManifest))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if !strings.Contains(out, "eliminated=0") {
		t.Errorf("elimination should be off:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _ := runCapture(t); code != 2 {
		t.Errorf("no args: exit %d", code)
	}
	if code, _ := runCapture(t, "/nonexistent/manifest.pp"); code != 2 {
		t.Errorf("missing file: exit %d", code)
	}
	bad := writeManifest(t, "package {")
	if code, _ := runCapture(t, bad); code != 1 {
		t.Errorf("parse error: expected exit 1")
	}
	cyclic := writeManifest(t, `
package {'m4': }
package {'make': }
Package['m4'] -> Package['make']
Package['make'] -> Package['m4']
`)
	code, out := runCapture(t, cyclic)
	if code != 1 {
		t.Errorf("cycle: exit %d", code)
	}
	_ = out
}

func TestNodeFlag(t *testing.T) {
	src := `
node 'web01' { package {'nginx': } }
node default { package {'generic': } }
`
	code, out := runCapture(t, "-node", "web01", "-dot", writeManifest(t, src))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if !strings.Contains(out, "Package[nginx]") || strings.Contains(out, "generic") {
		t.Errorf("node selection wrong:\n%s", out)
	}
}

func TestAllPlatforms(t *testing.T) {
	src := `
case $operatingsystem {
  'Ubuntu': { package {'apache2': ensure => present } }
  'CentOS': { package {'httpd': ensure => present } }
}
`
	code, out := runCapture(t, "-all-platforms", writeManifest(t, src))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	for _, want := range []string{"=== platform ubuntu ===", "=== platform centos ==="} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "determinism: OK") != 2 {
		t.Errorf("expected two verdicts:\n%s", out)
	}
	// A manifest that is fine on ubuntu but references a package missing
	// on centos fails only there.
	code, out = runCapture(t, "-all-platforms", writeManifest(t, `package {'golang-go': }`))
	if code == 0 {
		t.Fatalf("exit %d should be nonzero (golang-go unknown on centos):\n%s", code, out)
	}
}

func TestSuggestRepair(t *testing.T) {
	code, out := runCapture(t, "-suggest", writeManifest(t, buggyManifest))
	if code != 1 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if !strings.Contains(out, "suggested dependencies:") ||
		!strings.Contains(out, "Package[ntp] -> File[/etc/ntp.conf]") {
		t.Errorf("missing suggestion:\n%s", out)
	}
}

func TestNonIdempotentManifest(t *testing.T) {
	src := `
file {'/dst': source => '/src' }
file {'/src': ensure => absent }
File['/dst'] -> File['/src']
`
	code, out := runCapture(t, writeManifest(t, src))
	if code != 1 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if !strings.Contains(out, "determinism: OK") || !strings.Contains(out, "idempotence: FAIL") {
		t.Errorf("fig 3d output:\n%s", out)
	}
}

func TestMultipleManifests(t *testing.T) {
	ok := writeManifest(t, okManifest)
	buggy := filepath.Join(t.TempDir(), "buggy.pp")
	if err := os.WriteFile(buggy, []byte(buggyManifest), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := runCapture(t, "-parallel", "4", ok, buggy)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (worst verdict wins):\n%s", code, out)
	}
	// Per-manifest blocks appear under headers, in argument order.
	okHdr := strings.Index(out, "=== "+ok+" ===")
	buggyHdr := strings.Index(out, "=== "+buggy+" ===")
	if okHdr < 0 || buggyHdr < 0 {
		t.Fatalf("missing per-manifest headers:\n%s", out)
	}
	if okHdr > buggyHdr {
		t.Errorf("manifests reported out of argument order:\n%s", out)
	}
	if !strings.Contains(out[okHdr:buggyHdr], "determinism: OK") {
		t.Errorf("first manifest block wrong:\n%s", out)
	}
	if !strings.Contains(out[buggyHdr:], "determinism: FAIL") {
		t.Errorf("second manifest block wrong:\n%s", out)
	}
}

func TestMultipleManifestsMissingFile(t *testing.T) {
	ok := writeManifest(t, okManifest)
	code, out := runCapture(t, ok, "/nonexistent/other.pp")
	if code != 2 {
		t.Fatalf("exit %d, want 2 for unreadable manifest:\n%s", code, out)
	}
	if !strings.Contains(out, "=== "+ok+" ===") {
		t.Errorf("readable manifest should still be checked:\n%s", out)
	}
}

// TestInfrastructureExitCode: an unreachable listing service is an
// infrastructure failure (exit 4), distinguished from verdict failures
// (exit 1) and usage errors (exit 2).
func TestInfrastructureExitCode(t *testing.T) {
	code, _ := runCapture(t,
		"-pkg-server", "http://127.0.0.1:1",
		"-net-retries", "1", "-net-timeout", "200ms",
		writeManifest(t, okManifest))
	if code != 4 {
		t.Fatalf("exit %d, want 4 for an unreachable listing service", code)
	}
}

// TestSnapshotFallbackExitZero: with a snapshot attached, the same dead
// service degrades to the offline catalog and the check passes.
func TestSnapshotFallbackExitZero(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "catalog.snapshot")
	if err := pkgdb.WriteSnapshotFile(pkgdb.DefaultCatalog(), snap); err != nil {
		t.Fatal(err)
	}
	code, out := runCapture(t,
		"-pkg-server", "http://127.0.0.1:1",
		"-net-retries", "1", "-net-timeout", "200ms",
		"-snapshot", snap,
		writeManifest(t, okManifest))
	if code != 0 {
		t.Fatalf("exit %d, want 0 via snapshot fallback:\n%s", code, out)
	}
	if !strings.Contains(out, "determinism: OK") {
		t.Errorf("missing verdict:\n%s", out)
	}
	// A missing snapshot file is a usage error.
	if code, _ := runCapture(t, "-pkg-server", "http://127.0.0.1:1",
		"-snapshot", "/nonexistent.snapshot", writeManifest(t, okManifest)); code != 2 {
		t.Errorf("missing snapshot file: exit %d, want 2", code)
	}
}

// TestChaosServerVerdictsMatch is the end-to-end differential property:
// against a listing service that injects a burst of faults (503, aborted
// connections, truncated and corrupted JSON) on every path, a retry
// budget larger than the burst yields output byte-identical to the
// fault-free service — for a passing and for a failing manifest.
func TestChaosServerVerdictsMatch(t *testing.T) {
	clean := httptest.NewServer(pkgdb.Handler(pkgdb.DefaultCatalog()))
	defer clean.Close()
	chaotic := httptest.NewServer(faults.Middleware(
		faults.NewPlan(faults.Config{Seed: 7, Burst: 2}),
		pkgdb.Handler(pkgdb.DefaultCatalog())))
	defer chaotic.Close()

	for name, manifest := range map[string]string{"ok": okManifest, "buggy": buggyManifest} {
		path := writeManifest(t, manifest)
		args := func(url string) []string {
			return []string{"-pkg-server", url, "-net-retries", "8", path}
		}
		wantCode, wantOut := runCapture(t, args(clean.URL)...)
		gotCode, gotOut := runCapture(t, args(chaotic.URL)...)
		if gotCode != wantCode {
			t.Errorf("%s: exit %d under faults, %d clean", name, gotCode, wantCode)
		}
		if gotOut != wantOut {
			t.Errorf("%s: output differs under faults:\nfaulty:\n%s\nclean:\n%s", name, gotOut, wantOut)
		}
	}
}

func TestParallelFlagVerbose(t *testing.T) {
	code, out := runCapture(t, "-v", "-parallel", "3", writeManifest(t, okManifest))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if !strings.Contains(out, "workers=3") {
		t.Errorf("missing workers stat:\n%s", out)
	}
}

// runCapture2 invokes run capturing stdout and stderr separately.
func runCapture2(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	re, we, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout, os.Stderr = wo, we
	code := run(args)
	wo.Close()
	we.Close()
	os.Stdout, os.Stderr = oldOut, oldErr
	out, err := io.ReadAll(ro)
	if err != nil {
		t.Fatal(err)
	}
	errOut, err := io.ReadAll(re)
	if err != nil {
		t.Fatal(err)
	}
	return code, string(out), string(errOut)
}

// TestJSONMode: -json emits one report document per manifest on stdout, in
// the service's job-report schema, with the usual exit-code classes.
func TestJSONMode(t *testing.T) {
	code, out := runCapture(t, "-json", writeManifest(t, okManifest))
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	var rep service.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("stdout is not one JSON report: %v\n%s", err, out)
	}
	if rep.Verdict != service.VerdictPass || rep.Resources != 2 {
		t.Errorf("report: %+v", rep)
	}
	if rep.Determinism == nil || !rep.Determinism.Ok || rep.Idempotence == nil || !rep.Idempotence.Ok {
		t.Errorf("check reports: det=%+v idem=%+v", rep.Determinism, rep.Idempotence)
	}
	if rep.Stats == nil {
		t.Error("report should embed engine stats")
	}

	// A failing manifest: verdict fail, witness inline, exit 1.
	code, out = runCapture(t, "-json", "-suggest", writeManifest(t, buggyManifest))
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != service.VerdictFail || rep.Determinism.Ok {
		t.Errorf("report: %+v", rep)
	}
	if rep.Determinism.Witness == nil || len(rep.Determinism.Witness.Order1) == 0 {
		t.Errorf("witness: %+v", rep.Determinism.Witness)
	}
	if rep.Repair == nil || !rep.Repair.Found || len(rep.Repair.Edges) == 0 {
		t.Errorf("repair: %+v", rep.Repair)
	}

	// A dependency cycle: structured reason naming resources, exit 1.
	cyclic := `
package {'ntp': ensure => present, require => Package['git'] }
package {'git': ensure => present, require => Package['ntp'] }
`
	code, out = runCapture(t, "-json", writeManifest(t, cyclic))
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Error == nil || rep.Error.Class != service.ClassManifest || len(rep.Error.Cycle) == 0 {
		t.Errorf("cycle reason: %+v", rep.Error)
	}
}

// TestStatsOnStderr: -stats diagnostics go to stderr, keeping stdout clean
// for verdicts and JSON.
func TestStatsOnStderr(t *testing.T) {
	code, out, errOut := runCapture2(t, "-stats", writeManifest(t, okManifest))
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if strings.Contains(out, "solver-queries=") {
		t.Errorf("-stats leaked onto stdout:\n%s", out)
	}
	if !strings.Contains(errOut, "solver-queries=") || !strings.Contains(errOut, "disk-cache-hits=") {
		t.Errorf("-stats missing from stderr:\n%s", errOut)
	}

	// JSON mode plus -stats: stdout stays a parseable document.
	code, out, _ = runCapture2(t, "-json", "-stats", writeManifest(t, okManifest))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var rep service.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("stdout not clean JSON with -stats: %v\n%s", err, out)
	}
}

// Manifests for -diff tests: three packages whose dependency closures all
// include perl, so every pair syntactically conflicts on the shared files
// and must be discharged by a semantic commutativity query. The head
// version swaps spamassassin for amavisd-new, leaving the (git, golang-go)
// pair untouched — its verdict should be inherited, not re-solved.
const diffBaseManifest = `
package {'git': ensure => present }
package {'golang-go': ensure => present }
package {'spamassassin': ensure => present }
`

const diffHeadManifest = `
package {'git': ensure => present }
package {'golang-go': ensure => present }
package {'amavisd-new': ensure => present }
`

func writeManifestNamed(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffUsage: -diff demands exactly two manifests and is incompatible
// with -dot.
func TestDiffUsage(t *testing.T) {
	one := writeManifest(t, okManifest)
	if code, _, _ := runCapture2(t, "-diff", one); code != 2 {
		t.Errorf("-diff with one manifest: exit %d, want 2", code)
	}
	dir := t.TempDir()
	base := writeManifestNamed(t, dir, "base.pp", okManifest)
	head := writeManifestNamed(t, dir, "head.pp", okManifest)
	if code, _, _ := runCapture2(t, "-diff", "-dot", base, head); code != 2 {
		t.Errorf("-diff -dot: exit %d, want 2", code)
	}
}

// TestDiffMode: a full run warms the disk cache; the differential run
// against the edited head inherits the unchanged pair's verdict (one
// pairs-reused, one disk hit) and re-solves only pairs touching the edit.
func TestDiffMode(t *testing.T) {
	dir := t.TempDir()
	base := writeManifestNamed(t, dir, "base.pp", diffBaseManifest)
	head := writeManifestNamed(t, dir, "head.pp", diffHeadManifest)
	cache := filepath.Join(dir, "cache")

	code, out, _ := runCapture2(t, "-semantic-commute", "-skip-idempotence", "-cache-dir", cache, base)
	if code != 0 {
		t.Fatalf("full base run: exit %d:\n%s", code, out)
	}

	code, out, errOut := runCapture2(t, "-diff", "-semantic-commute", "-skip-idempotence",
		"-cache-dir", cache, "-stats", base, head)
	if code != 0 {
		t.Fatalf("diff run: exit %d:\n%s\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "determinism: OK") {
		t.Errorf("diff run verdict:\n%s", out)
	}
	for _, want := range []string{
		"diff-changed=1 diff-unchanged=2",
		"pairs-reused=1",
		"pairs-reverified=2",
		"inherit-misses=0",
		"disk-corrupt=0",
	} {
		if !strings.Contains(errOut, want) {
			t.Errorf("-stats missing %q:\n%s", want, errOut)
		}
	}

	// The diff verdict must match an independent full verification of head.
	code, fullOut := runCapture(t, "-semantic-commute", "-skip-idempotence", head)
	if code != 0 || !strings.Contains(fullOut, "determinism: OK") {
		t.Fatalf("full head run: exit %d:\n%s", code, fullOut)
	}
}

// TestDiffJSON: -diff -json emits the service report schema with the diff
// partition and pair-reuse counters filled in.
func TestDiffJSON(t *testing.T) {
	dir := t.TempDir()
	base := writeManifestNamed(t, dir, "base.pp", diffBaseManifest)
	head := writeManifestNamed(t, dir, "head.pp", diffHeadManifest)
	cache := filepath.Join(dir, "cache")

	if code, out, _ := runCapture2(t, "-semantic-commute", "-skip-idempotence", "-cache-dir", cache, base); code != 0 {
		t.Fatalf("full base run: exit %d:\n%s", code, out)
	}
	code, out, errOut := runCapture2(t, "-diff", "-json", "-semantic-commute", "-skip-idempotence",
		"-cache-dir", cache, base, head)
	if code != 0 {
		t.Fatalf("diff -json: exit %d:\n%s\n%s", code, out, errOut)
	}
	var rep service.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("stdout is not one JSON report: %v\n%s", err, out)
	}
	if rep.Verdict != service.VerdictPass || rep.Stats == nil {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Stats.DiffChanged != 1 || rep.Stats.DiffUnchanged != 2 {
		t.Errorf("diff partition: changed=%d unchanged=%d", rep.Stats.DiffChanged, rep.Stats.DiffUnchanged)
	}
	// The changed pairs may come back warm from the process-wide memory
	// cache (earlier tests in this binary solve them); warm changed pairs
	// count in neither bucket, so only bound the re-verified count.
	if rep.Stats.PairsReused != 1 || rep.Stats.PairsReverified > 2 || rep.Stats.InheritMisses != 0 {
		t.Errorf("pair accounting: reused=%d reverified=%d misses=%d",
			rep.Stats.PairsReused, rep.Stats.PairsReverified, rep.Stats.InheritMisses)
	}
}
