// Command rehearsal verifies Puppet manifests: it checks determinism
// (section 4), idempotence (section 5) and optional file invariants, and
// can dump the compiled resource graph.
//
// Usage:
//
//	rehearsal [flags] manifest.pp [manifest2.pp ...]
//
// Typical runs:
//
//	rehearsal site.pp
//	rehearsal -platform centos -timeout 2m site.pp
//	rehearsal -invariant /etc/motd=welcome site.pp
//	rehearsal -dot site.pp > graph.dot
//	rehearsal -parallel 8 site1.pp site2.pp site3.pp
//	rehearsal -semantic-commute -cache-dir ~/.cache/rehearsal site.pp
//	rehearsal -diff -cache-dir ~/.cache/rehearsal old.pp new.pp
//
// With -diff and exactly two manifests, the first is the base version and
// the second the head: the engine diffs their compiled resource models by
// digest and re-verifies only pairs touching a changed resource,
// inheriting every unchanged-pair verdict from the warm caches (point
// -cache-dir at the directory a previous full run populated). -stats
// reports the partition (diff-changed/diff-unchanged) and the pair-level
// savings (pairs-reused/pairs-reverified/inherit-misses).
//
// With several manifests the checks run concurrently (bounded by
// -parallel) and share the process-wide semantic-commutativity cache, so
// fleets of manifests with overlapping resources never re-solve the same
// query; each manifest's report is printed as one block, in argument
// order. With -cache-dir, verdicts additionally persist on disk, so a
// later rehearsal process pointed at the same directory starts warm.
//
// With -json, each manifest's report is emitted as one machine-readable
// JSON document on stdout — the same schema the rehearsald service returns
// for finished jobs — and human-oriented statistics (-stats) go to stderr.
//
// With -pkg-server, package listings come from a live service; the client
// retries transient failures (per-attempt timeout -net-timeout, total
// attempts -net-retries) and, when -snapshot names a catalog snapshot
// (see pkgserver -write-snapshot), degrades to it rather than failing
// when the service is unavailable. SIGINT/SIGTERM cancel in-flight
// checks promptly.
//
// Exit codes distinguish the failure class:
//
//	0  every check passed
//	1  verdict failure: non-deterministic, non-idempotent, violated
//	   invariant, or a manifest error
//	2  usage error: bad flags, unreadable manifest
//	3  timeout or interrupt: the analysis did not finish
//	4  infrastructure failure: listing service unavailable, solver worker
//	   panic — re-running may succeed
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/pkgdb"
	"repro/internal/qcache"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// options bundles the per-manifest verification configuration.
type options struct {
	core       core.Options
	pkgServer  string
	netTimeout time.Duration
	netRetries int
	snapshot   string
	allPlats   bool
	dot        bool
	jsonOut    bool
	verbose    bool
	stats      bool
	skipIdem   bool
	suggest    bool
	invariant  string
	// baseSrc is the base manifest source in -diff mode; empty means a
	// full verification.
	baseSrc string
}

// newProvider builds the hardened listing-service client for opts,
// attaching the offline snapshot fallback when one was given.
func newProvider(opts options) (pkgdb.Provider, error) {
	client := pkgdb.NewClientConfig(opts.pkgServer, pkgdb.ClientConfig{
		AttemptTimeout: opts.netTimeout,
		Attempts:       opts.netRetries,
	})
	if opts.snapshot != "" {
		if err := client.AttachSnapshot(opts.snapshot); err != nil {
			return nil, err
		}
	}
	return client, nil
}

// classify maps a check error to its exit-code class (see the package
// comment): timeouts and interrupts are 3, infrastructure failures 4,
// everything else a verdict-class 1.
func classify(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, core.ErrTimeout), errors.Is(err, core.ErrCanceled), errors.Is(err, context.Canceled):
		return 3
	case core.IsInfraError(err):
		return 4
	default:
		return 1
	}
}

// reportCheckErr prints one check stage's failure and returns its exit
// class. Timeouts and interrupts keep the stage-labelled verdict line the
// reports have always used.
func reportCheckErr(w, ew io.Writer, stage string, err error) int {
	switch code := classify(err); code {
	case 3:
		if errors.Is(err, core.ErrCanceled) || errors.Is(err, context.Canceled) {
			fmt.Fprintf(w, "%s: INTERRUPTED\n", stage)
		} else {
			fmt.Fprintf(w, "%s: TIMEOUT\n", stage)
		}
		return 3
	default:
		fmt.Fprintf(ew, "rehearsal: %v\n", err)
		return code
	}
}

func run(args []string) int {
	fl := flag.NewFlagSet("rehearsal", flag.ContinueOnError)
	platform := fl.String("platform", "ubuntu", "target platform (ubuntu or centos); selects facts and the package catalog")
	timeout := fl.Duration("timeout", 10*time.Minute, "per-check timeout (the paper's benchmark limit)")
	pkgServer := fl.String("pkg-server", "", "base URL of a package-listing service (default: built-in catalog)")
	netTimeout := fl.Duration("net-timeout", pkgdb.DefaultAttemptTimeout, "per-attempt timeout for package-listing requests (with -pkg-server)")
	netRetries := fl.Int("net-retries", pkgdb.DefaultAttempts, "total attempts per package-listing request (with -pkg-server)")
	snapshot := fl.String("snapshot", "", "catalog snapshot file used as fallback when the listing service is unavailable (see pkgserver -write-snapshot)")
	nodeName := fl.String("node", "default", "node name for node-block selection")
	allPlatforms := fl.Bool("all-platforms", false, "re-verify the manifest for every supported platform (paper section 8)")
	noCommut := fl.Bool("no-commutativity", false, "disable commutativity-based partial-order reduction (section 4.3)")
	noElim := fl.Bool("no-elimination", false, "disable resource elimination (section 4.4)")
	noPrune := fl.Bool("no-pruning", false, "disable path pruning (section 4.4)")
	semCommute := fl.Bool("semantic-commute", false, "strengthen the commutativity check with solver-based pairwise equivalence (helps overlapping package closures)")
	cacheDir := fl.String("cache-dir", "", "persist semantic-commutativity verdicts to this directory; later runs pointed at the same directory start warm")
	wellFormed := fl.Bool("well-formed-init", false, "restrict initial states to well-formed filesystem trees (realizable machines)")
	skipIdem := fl.Bool("skip-idempotence", false, "only check determinism")
	invariant := fl.String("invariant", "", "check a file invariant, formatted path=content")
	dot := fl.Bool("dot", false, "print the resource graph in Graphviz format and exit")
	jsonOut := fl.Bool("json", false, "emit one JSON report per manifest on stdout (the rehearsald job-report schema)")
	suggest := fl.Bool("suggest", false, "on non-determinism, search for missing dependencies that repair the manifest")
	diffMode := fl.Bool("diff", false, "differential verification: with exactly two manifests, treat the first as the base version and re-verify only resource pairs whose compiled models changed, inheriting the rest from the (ideally warm, see -cache-dir) verdict caches")
	parallel := fl.Int("parallel", 0, "worker count for solver queries and concurrent manifests (0 = number of CPUs)")
	portfolio := fl.Int("portfolio", 0, "race this many diverse solver configs on hard semantic-commutativity queries, first verdict wins (0 or 1 = single-config; verdicts and witnesses are byte-identical either way)")
	portfolioEscalate := fl.Int64("portfolio-escalate", 0, "conflict budget of the pre-race default-config attempt; only exhaustion escalates to the portfolio (0 = built-in default)")
	verbose := fl.Bool("v", false, "print analysis statistics")
	stats := fl.Bool("stats", false, "print solver-backend statistics (solver reuses, learnt clauses retained, intern/encode-memo/disk-cache hits; with -diff, reused vs re-verified pair counts; with -cache-dir, disk hits/misses/corrupt entries)")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if fl.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: rehearsal [flags] manifest.pp [manifest2.pp ...]")
		fl.PrintDefaults()
		return 2
	}

	// SIGINT/SIGTERM cancel in-flight checks: workers stop promptly and
	// the process exits with the interrupt class instead of hanging until
	// the analysis timeout.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	copts := core.DefaultOptions()
	copts.Platform = *platform
	copts.NodeName = *nodeName
	copts.Timeout = *timeout
	copts.Context = ctx
	copts.Commutativity = !*noCommut
	copts.Elimination = !*noElim
	copts.Pruning = !*noPrune
	copts.SemanticCommute = *semCommute
	copts.CacheDir = *cacheDir
	copts.WellFormedInit = *wellFormed
	copts.Parallelism = *parallel
	copts.Portfolio = core.PortfolioOptions{K: *portfolio, EscalateConflicts: *portfolioEscalate}

	opts := options{
		core:       copts,
		pkgServer:  *pkgServer,
		netTimeout: *netTimeout,
		netRetries: *netRetries,
		snapshot:   *snapshot,
		allPlats:   *allPlatforms,
		dot:        *dot,
		jsonOut:    *jsonOut,
		verbose:    *verbose,
		stats:      *stats,
		skipIdem:   *skipIdem,
		suggest:    *suggest,
		invariant:  *invariant,
	}
	if *pkgServer != "" {
		p, err := newProvider(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rehearsal: %v\n", err)
			return 2
		}
		opts.core.Provider = p
	}

	paths := fl.Args()
	if *diffMode {
		if len(paths) != 2 {
			fmt.Fprintln(os.Stderr, "usage: rehearsal -diff [flags] base.pp head.pp")
			return 2
		}
		if *dot {
			fmt.Fprintln(os.Stderr, "rehearsal: -diff and -dot are mutually exclusive")
			return 2
		}
		baseSrc, err := os.ReadFile(paths[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "rehearsal: %v\n", err)
			return 2
		}
		opts.baseSrc = string(baseSrc)
		return checkManifest(os.Stdout, os.Stderr, paths[1], opts)
	}
	if len(paths) == 1 {
		return checkManifest(os.Stdout, os.Stderr, paths[0], opts)
	}

	// Several manifests: check them concurrently, each writing into its
	// own pair of buffers (stdout-bound and stderr-bound, so -stats and
	// diagnostics never pollute machine-readable output), and print the
	// blocks in argument order.
	workers := copts.Parallelism
	if workers <= 0 {
		workers = len(paths)
	}
	codes := make([]int, len(paths))
	outBufs := make([]bytes.Buffer, len(paths))
	errBufs := make([]bytes.Buffer, len(paths))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, path := range paths {
		i, path := i, path
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			codes[i] = checkManifest(&outBufs[i], &errBufs[i], path, opts)
		}()
	}
	wg.Wait()
	worst := 0
	for i, path := range paths {
		if !opts.jsonOut {
			fmt.Printf("=== %s ===\n", path)
		}
		os.Stdout.Write(outBufs[i].Bytes())
		if errBufs[i].Len() > 0 {
			fmt.Fprintf(os.Stderr, "=== %s ===\n", path)
			os.Stderr.Write(errBufs[i].Bytes())
		}
		if codes[i] > worst {
			worst = codes[i]
		}
	}
	return worst
}

// checkManifest reads and verifies one manifest file, writing results to w
// and errors to ew; it returns the process exit code for this manifest.
func checkManifest(w, ew io.Writer, path string, opts options) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(ew, "rehearsal: %v\n", err)
		return 2
	}
	if opts.allPlats {
		// The paper notes the analysis is platform-dependent and suggests
		// re-verifying per platform (section 8).
		worst := 0
		for _, plat := range []string{"ubuntu", "centos"} {
			perPlat := opts
			perPlat.core.Platform = plat
			perPlat.core.Provider = nil // reset any client bound to one catalog
			if opts.pkgServer != "" {
				p, err := newProvider(opts)
				if err != nil {
					fmt.Fprintf(ew, "rehearsal: %v\n", err)
					return 2
				}
				perPlat.core.Provider = p
			}
			fmt.Fprintf(w, "=== platform %s ===\n", plat)
			code := verifyOne(w, ew, path, string(src), perPlat)
			if code > worst {
				worst = code
			}
		}
		return worst
	}
	return verifyOne(w, ew, path, string(src), opts)
}

// verifyJSON runs the shared service report pipeline over one manifest and
// prints the report as a single JSON document: the CLI's -json mode and a
// rehearsald job produce byte-identical report bodies for the same input.
func verifyJSON(w, ew io.Writer, path, src string, opts options) int {
	if opts.invariant != "" && !strings.Contains(opts.invariant, "=") {
		fmt.Fprintln(ew, "rehearsal: -invariant must be path=content")
		return 2
	}
	req := service.JobRequest{
		Manifest:        src,
		BaseManifest:    opts.baseSrc,
		Platform:        opts.core.Platform,
		Node:            opts.core.NodeName,
		Checks:          []string{service.CheckDeterminism},
		Invariant:       opts.invariant,
		SemanticCommute: opts.core.SemanticCommute,
		WellFormedInit:  opts.core.WellFormedInit,
	}
	if !opts.skipIdem {
		req.Checks = append(req.Checks, service.CheckIdempotence)
	}
	if opts.suggest {
		req.Checks = append(req.Checks, service.CheckRepair)
	}
	rep := service.BuildReport(req, opts.core)
	rep.Manifest = path
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(ew, "rehearsal: %v\n", err)
		return 4
	}
	return service.ExitCode(rep)
}

// verifyOne loads and verifies the manifest under one option set,
// printing results; it returns the process exit code.
func verifyOne(w, ew io.Writer, path, src string, opts options) int {
	if opts.jsonOut {
		return verifyJSON(w, ew, path, src, opts)
	}
	sys, err := core.Load(src, opts.core)
	if err != nil {
		fmt.Fprintf(ew, "rehearsal: %v\n", err)
		return classify(err)
	}
	if opts.dot {
		fmt.Fprint(w, sys.Dot())
		return 0
	}
	fmt.Fprintf(w, "loaded %d resources from %s (platform %s)\n", sys.Size(), path, opts.core.Platform)

	var res *core.DeterminismResult
	if opts.baseSrc != "" {
		baseSys, berr := core.Load(opts.baseSrc, opts.core)
		if berr != nil {
			fmt.Fprintf(ew, "rehearsal: base manifest: %v\n", berr)
			return classify(berr)
		}
		res, err = sys.CheckDeterminismDiff(baseSys)
	} else {
		res, err = sys.CheckDeterminism()
	}
	if err != nil {
		return reportCheckErr(w, ew, "determinism", err)
	}
	if opts.verbose {
		fmt.Fprintf(w, "  resources=%d eliminated=%d pruned-paths=%d paths=%d/%d sequences=%d workers=%d time=%v\n",
			res.Stats.Resources, res.Stats.Eliminated, res.Stats.PrunedPaths,
			res.Stats.Paths, res.Stats.TotalPaths, res.Stats.Sequences,
			res.Stats.Workers, res.Stats.Duration.Round(time.Millisecond))
		if res.Stats.SemQueries+res.Stats.SemCacheHits > 0 {
			fmt.Fprintf(w, "  solver-queries=%d cache-hits=%d hit-rate=%.0f%%\n",
				res.Stats.SemQueries, res.Stats.SemCacheHits, 100*res.Stats.SemCacheHitRate())
		}
	}
	if opts.stats {
		// Statistics are diagnostics, not results: stderr, so stdout stays
		// clean for verdicts (and pipelines scraping them).
		fmt.Fprintf(ew, "  solver-queries=%d solver-reuses=%d learnt-retained=%d preprocess-removed=%d\n",
			res.Stats.SemQueries, res.Stats.SolverReuses,
			res.Stats.LearntRetained, res.Stats.PreprocessRemoved)
		fmt.Fprintf(ew, "  intern-hits=%d encode-memo-hits=%d disk-cache-hits=%d\n",
			res.Stats.InternHits, res.Stats.EncodeMemoHits, res.Stats.DiskCacheHits)
		fmt.Fprintf(ew, "  decisions=%d propagations=%d conflicts=%d restarts=%d\n",
			res.Stats.SolverDecisions, res.Stats.SolverPropagations,
			res.Stats.SolverConflicts, res.Stats.SolverRestarts)
		if res.Stats.PortfolioEscalations > 0 || res.Stats.PortfolioRaces > 0 {
			fmt.Fprintf(ew, "  portfolio-escalations=%d portfolio-races=%d", res.Stats.PortfolioEscalations, res.Stats.PortfolioRaces)
			names := make([]string, 0, len(res.Stats.WinnerByConfig))
			for name := range res.Stats.WinnerByConfig {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(ew, " wins[%s]=%d", name, res.Stats.WinnerByConfig[name])
			}
			fmt.Fprintln(ew)
		}
		if opts.baseSrc != "" {
			fmt.Fprintf(ew, "  diff-changed=%d diff-unchanged=%d pairs-reused=%d pairs-reverified=%d inherit-misses=%d\n",
				res.Stats.DiffChanged, res.Stats.DiffUnchanged,
				res.Stats.PairsReused, res.Stats.PairsReverified, res.Stats.InheritMisses)
		}
		if opts.core.CacheDir != "" {
			if disk, err := qcache.OpenDiskShared(opts.core.CacheDir); err == nil {
				ds := disk.StatsSnapshot()
				fmt.Fprintf(ew, "  disk-hits=%d disk-misses=%d disk-corrupt=%d\n",
					ds.Hits, ds.Misses, ds.CorruptEntries)
			}
		}
	}
	if !res.Deterministic {
		fmt.Fprintln(w, "determinism: FAIL — the manifest is non-deterministic")
		printCounterexample(w, res.Counterexample)
		if opts.suggest {
			repair, err := sys.SuggestRepair()
			switch {
			case err != nil:
				fmt.Fprintf(w, "  no repair found: %v\n", err)
			case repair != nil:
				fmt.Fprintln(w, "  suggested dependencies:")
				for _, e := range repair.Edges {
					fmt.Fprintf(w, "    %s\n", e)
				}
			}
		}
		return 1
	}
	fmt.Fprintln(w, "determinism: OK")

	exitCode := 0
	if !opts.skipIdem {
		idem, err := sys.CheckIdempotence()
		if err != nil {
			return reportCheckErr(w, ew, "idempotence", err)
		}
		if idem.Idempotent {
			fmt.Fprintln(w, "idempotence: OK")
		} else {
			fmt.Fprintln(w, "idempotence: FAIL — applying the manifest twice differs from once")
			fmt.Fprintf(w, "  %s\n", strings.ReplaceAll(idem.Counterexample.String(), "\n", "\n  "))
			exitCode = 1
		}
	}

	if opts.invariant != "" {
		path, content, ok := strings.Cut(opts.invariant, "=")
		if !ok {
			fmt.Fprintln(ew, "rehearsal: -invariant must be path=content")
			return 2
		}
		inv, err := sys.CheckFileInvariant(fs.ParsePath(path), content)
		if err != nil {
			return reportCheckErr(w, ew, "invariant", err)
		}
		if inv.Holds {
			fmt.Fprintf(w, "invariant %s: OK\n", opts.invariant)
		} else {
			fmt.Fprintf(w, "invariant %s: FAIL\n", opts.invariant)
			fmt.Fprintf(w, "  violated from initial state %s\n", fs.StateString(inv.Input))
			exitCode = 1
		}
	}
	return exitCode
}

func printCounterexample(w io.Writer, cex *core.Counterexample) {
	if cex == nil {
		return
	}
	fmt.Fprintf(w, "  initial state: %s\n", fs.StateString(cex.Input))
	fmt.Fprintf(w, "  order A: %s\n", strings.Join(cex.Order1, ", "))
	fmt.Fprintf(w, "    outcome: %s\n", outcome(cex.Ok1, cex.Out1))
	fmt.Fprintf(w, "  order B: %s\n", strings.Join(cex.Order2, ", "))
	fmt.Fprintf(w, "    outcome: %s\n", outcome(cex.Ok2, cex.Out2))
	if cex.Ok1 && cex.Ok2 {
		fmt.Fprintf(w, "  differing paths: %s\n", strings.Join(diffPaths(cex.Out1, cex.Out2), ", "))
	}
}

func outcome(ok bool, st fs.State) string {
	if !ok {
		return "error"
	}
	return fs.StateString(st)
}

func diffPaths(a, b fs.State) []string {
	var out []string
	seen := map[fs.Path]bool{}
	for p, c := range a {
		seen[p] = true
		if oc, ok := b[p]; !ok || oc != c {
			out = append(out, string(p))
		}
	}
	for p := range b {
		if !seen[p] {
			out = append(out, string(p))
		}
	}
	sort.Strings(out)
	return out
}
