// Command rehearsal verifies Puppet manifests: it checks determinism
// (section 4), idempotence (section 5) and optional file invariants, and
// can dump the compiled resource graph.
//
// Usage:
//
//	rehearsal [flags] manifest.pp
//
// Typical runs:
//
//	rehearsal site.pp
//	rehearsal -platform centos -timeout 2m site.pp
//	rehearsal -invariant /etc/motd=welcome site.pp
//	rehearsal -dot site.pp > graph.dot
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/pkgdb"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fl := flag.NewFlagSet("rehearsal", flag.ContinueOnError)
	platform := fl.String("platform", "ubuntu", "target platform (ubuntu or centos); selects facts and the package catalog")
	timeout := fl.Duration("timeout", 10*time.Minute, "per-check timeout (the paper's benchmark limit)")
	pkgServer := fl.String("pkg-server", "", "base URL of a package-listing service (default: built-in catalog)")
	nodeName := fl.String("node", "default", "node name for node-block selection")
	allPlatforms := fl.Bool("all-platforms", false, "re-verify the manifest for every supported platform (paper section 8)")
	noCommut := fl.Bool("no-commutativity", false, "disable commutativity-based partial-order reduction (section 4.3)")
	noElim := fl.Bool("no-elimination", false, "disable resource elimination (section 4.4)")
	noPrune := fl.Bool("no-pruning", false, "disable path pruning (section 4.4)")
	semCommute := fl.Bool("semantic-commute", false, "strengthen the commutativity check with solver-based pairwise equivalence (helps overlapping package closures)")
	wellFormed := fl.Bool("well-formed-init", false, "restrict initial states to well-formed filesystem trees (realizable machines)")
	skipIdem := fl.Bool("skip-idempotence", false, "only check determinism")
	invariant := fl.String("invariant", "", "check a file invariant, formatted path=content")
	dot := fl.Bool("dot", false, "print the resource graph in Graphviz format and exit")
	suggest := fl.Bool("suggest", false, "on non-determinism, search for missing dependencies that repair the manifest")
	verbose := fl.Bool("v", false, "print analysis statistics")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if fl.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rehearsal [flags] manifest.pp")
		fl.PrintDefaults()
		return 2
	}

	src, err := os.ReadFile(fl.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rehearsal: %v\n", err)
		return 2
	}

	opts := core.DefaultOptions()
	opts.Platform = *platform
	opts.NodeName = *nodeName
	opts.Timeout = *timeout
	opts.Commutativity = !*noCommut
	opts.Elimination = !*noElim
	opts.Pruning = !*noPrune
	opts.SemanticCommute = *semCommute
	opts.WellFormedInit = *wellFormed
	if *pkgServer != "" {
		opts.Provider = pkgdb.NewClient(*pkgServer, nil)
	}

	if *allPlatforms {
		// The paper notes the analysis is platform-dependent and suggests
		// re-verifying per platform (section 8).
		worst := 0
		for _, plat := range []string{"ubuntu", "centos"} {
			perPlat := opts
			perPlat.Platform = plat
			perPlat.Provider = nil // reset any client bound to one catalog
			if *pkgServer != "" {
				perPlat.Provider = pkgdb.NewClient(*pkgServer, nil)
			}
			fmt.Printf("=== platform %s ===\n", plat)
			code := verifyOne(fl.Arg(0), string(src), perPlat, *dot, *verbose, *skipIdem, *suggest, *invariant)
			if code > worst {
				worst = code
			}
		}
		return worst
	}
	return verifyOne(fl.Arg(0), string(src), opts, *dot, *verbose, *skipIdem, *suggest, *invariant)
}

// verifyOne loads and verifies the manifest under one option set,
// printing results; it returns the process exit code.
func verifyOne(path, src string, opts core.Options, dot, verbose, skipIdem, suggest bool, invariant string) int {
	sys, err := core.Load(src, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rehearsal: %v\n", err)
		return 1
	}
	if dot {
		fmt.Print(sys.Dot())
		return 0
	}
	fmt.Printf("loaded %d resources from %s (platform %s)\n", sys.Size(), path, opts.Platform)

	res, err := sys.CheckDeterminism()
	if errors.Is(err, core.ErrTimeout) {
		fmt.Println("determinism: TIMEOUT")
		return 3
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rehearsal: %v\n", err)
		return 1
	}
	if verbose {
		fmt.Printf("  resources=%d eliminated=%d pruned-paths=%d paths=%d/%d sequences=%d time=%v\n",
			res.Stats.Resources, res.Stats.Eliminated, res.Stats.PrunedPaths,
			res.Stats.Paths, res.Stats.TotalPaths, res.Stats.Sequences, res.Stats.Duration.Round(time.Millisecond))
	}
	if !res.Deterministic {
		fmt.Println("determinism: FAIL — the manifest is non-deterministic")
		printCounterexample(res.Counterexample)
		if suggest {
			repair, err := sys.SuggestRepair()
			switch {
			case err != nil:
				fmt.Printf("  no repair found: %v\n", err)
			case repair != nil:
				fmt.Println("  suggested dependencies:")
				for _, e := range repair.Edges {
					fmt.Printf("    %s\n", e)
				}
			}
		}
		return 1
	}
	fmt.Println("determinism: OK")

	exitCode := 0
	if !skipIdem {
		idem, err := sys.CheckIdempotence()
		if errors.Is(err, core.ErrTimeout) {
			fmt.Println("idempotence: TIMEOUT")
			return 3
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rehearsal: %v\n", err)
			return 1
		}
		if idem.Idempotent {
			fmt.Println("idempotence: OK")
		} else {
			fmt.Println("idempotence: FAIL — applying the manifest twice differs from once")
			fmt.Printf("  %s\n", strings.ReplaceAll(idem.Counterexample.String(), "\n", "\n  "))
			exitCode = 1
		}
	}

	if invariant != "" {
		path, content, ok := strings.Cut(invariant, "=")
		if !ok {
			fmt.Fprintln(os.Stderr, "rehearsal: -invariant must be path=content")
			return 2
		}
		inv, err := sys.CheckFileInvariant(fs.ParsePath(path), content)
		if errors.Is(err, core.ErrTimeout) {
			fmt.Println("invariant: TIMEOUT")
			return 3
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rehearsal: %v\n", err)
			return 1
		}
		if inv.Holds {
			fmt.Printf("invariant %s: OK\n", invariant)
		} else {
			fmt.Printf("invariant %s: FAIL\n", invariant)
			fmt.Printf("  violated from initial state %s\n", fs.StateString(inv.Input))
			exitCode = 1
		}
	}
	return exitCode
}

func printCounterexample(cex *core.Counterexample) {
	if cex == nil {
		return
	}
	fmt.Printf("  initial state: %s\n", fs.StateString(cex.Input))
	fmt.Printf("  order A: %s\n", strings.Join(cex.Order1, ", "))
	fmt.Printf("    outcome: %s\n", outcome(cex.Ok1, cex.Out1))
	fmt.Printf("  order B: %s\n", strings.Join(cex.Order2, ", "))
	fmt.Printf("    outcome: %s\n", outcome(cex.Ok2, cex.Out2))
	if cex.Ok1 && cex.Ok2 {
		fmt.Printf("  differing paths: %s\n", strings.Join(diffPaths(cex.Out1, cex.Out2), ", "))
	}
}

func outcome(ok bool, st fs.State) string {
	if !ok {
		return "error"
	}
	return fs.StateString(st)
}

func diffPaths(a, b fs.State) []string {
	var out []string
	seen := map[fs.Path]bool{}
	for p, c := range a {
		seen[p] = true
		if oc, ok := b[p]; !ok || oc != c {
			out = append(out, string(p))
		}
	}
	for p := range b {
		if !seen[p] {
			out = append(out, string(p))
		}
	}
	sort.Strings(out)
	return out
}
