// Command rehearsald is the long-running verification daemon: it accepts
// manifest-analysis jobs over HTTP/JSON and runs them on a bounded worker
// pool that shares one warm substrate — pooled incremental solvers, the
// hash-consed interner, the in-memory verdict cache and (with -cache-dir)
// its on-disk tier — so repeated and overlapping manifests verify far
// faster than one-shot CLI runs.
//
// Usage:
//
//	rehearsald [flags]
//
// Typical runs:
//
//	rehearsald -addr :8374
//	rehearsald -workers 8 -queue-depth 128 -cache-dir /var/cache/rehearsald
//	rehearsald -pkg-server http://localhost:8373 -snapshot catalog.snap
//	rehearsald -chaos seed=42,rate=0.2,kinds=status+reset
//	rehearsald -advertise http://10.0.0.5:8374 -peers http://10.0.0.6:8374,http://10.0.0.7:8374
//
// API (see internal/service):
//
//	POST   /v1/jobs              submit {"manifest": "...", "checks": [...]}
//	GET    /v1/jobs/{id}         lifecycle + report when finished
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/jobs/{id}/witness counterexample witness document
//	GET    /metrics              Prometheus text format
//	GET    /healthz, /readyz     probes (readyz follows drain state and the
//	                             package-listing circuit breaker)
//
// With -advertise (and usually -peers) the daemon joins a verdict-sharing
// cluster: submissions are digest-routed to their consistent-hash ring
// owner, verdict lookups consult the peer ring before the solver, and the
// peer/ring endpoints (GET/PUT /v1/cache/{key}, /v1/ring, /v1/ring/peers,
// /v1/cluster/stats) come up — see cmd/rehearsalctl for operating them.
//
// SIGINT/SIGTERM drain gracefully: admission stops, queued and in-flight
// jobs finish in the canceled state, workers join, then the listener
// closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/pkgdb"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8374", "listen address")
	workers := flag.Int("workers", 0, "verification worker count (0 = number of CPUs)")
	queueDepth := flag.Int("queue-depth", 64, "max queued jobs before admission control answers 429")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job wall-clock cap (requests may ask for less, never more)")
	resultTTL := flag.Duration("result-ttl", 15*time.Minute, "how long finished jobs answer identical re-submissions from the result layer")
	cacheDir := flag.String("cache-dir", "", "persist semantic-commutativity verdicts to this directory (restart-warm)")
	semCommute := flag.Bool("semantic-commute", false, "strengthen commutativity with solver-based pairwise equivalence for every job")
	parallel := flag.Int("parallel", 0, "per-job solver parallelism (0 = number of CPUs)")
	portfolio := flag.Int("portfolio", 0, "race this many diverse solver configs on hard semantic-commutativity queries (0 or 1 = single-config)")
	portfolioEscalate := flag.Int64("portfolio-escalate", 0, "conflict budget of the pre-race default-config attempt (0 = built-in default)")
	pkgServer := flag.String("pkg-server", "", "base URL of a package-listing service (default: built-in catalog)")
	netTimeout := flag.Duration("net-timeout", pkgdb.DefaultAttemptTimeout, "per-attempt timeout for package-listing requests")
	netRetries := flag.Int("net-retries", pkgdb.DefaultAttempts, "total attempts per package-listing request")
	snapshot := flag.String("snapshot", "", "catalog snapshot file used as fallback when the listing service is unavailable")
	chaos := flag.String("chaos", "", "fault-injection spec applied to the HTTP layer (testing only), e.g. seed=42,rate=0.2,kinds=status+reset")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for workers to observe cancellation")
	peers := flag.String("peers", "", "comma-separated peer URLs to form a verdict-sharing cluster with (requires -advertise)")
	advertise := flag.String("advertise", "", "URL peers reach this node at, e.g. http://10.0.0.5:8374 (joins the cluster ring)")
	flag.Parse()

	var node *cluster.Node
	if *advertise != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		node = cluster.NewNode(*advertise, peerList)
	} else if *peers != "" {
		log.Fatalf("rehearsald: -peers requires -advertise (peers must be able to reach this node)")
	}

	// One warm substrate for the whole process: every worker binds to it.
	subCfg := core.SubstrateConfig{CacheDir: *cacheDir}
	if node != nil {
		// Verdict lookups go memory → disk → peer ring before any solver
		// query; a dead peer degrades to a miss.
		subCfg.RemoteTier = node.Tier()
	}
	if *pkgServer != "" {
		client := pkgdb.NewClientConfig(*pkgServer, pkgdb.ClientConfig{
			AttemptTimeout: *netTimeout,
			Attempts:       *netRetries,
		})
		if *snapshot != "" {
			if err := client.AttachSnapshot(*snapshot); err != nil {
				log.Fatalf("rehearsald: -snapshot: %v", err)
			}
		}
		subCfg.Provider = client
	}
	sub, err := core.NewSubstrate(subCfg)
	if err != nil {
		log.Fatalf("rehearsald: %v", err)
	}

	base := core.DefaultOptions()
	base.SemanticCommute = *semCommute
	base.Parallelism = *parallel
	base.Portfolio = core.PortfolioOptions{K: *portfolio, EscalateConflicts: *portfolioEscalate}

	cfg := service.Config{
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		JobTimeout:  *jobTimeout,
		ResultTTL:   *resultTTL,
		Substrate:   sub,
		BaseOptions: &base,
		Cluster:     node,
	}
	if *chaos != "" {
		fcfg, err := faults.ParseSpec(*chaos)
		if err != nil {
			log.Fatalf("rehearsald: -chaos: %v", err)
		}
		cfg.Faults = faults.NewPlan(fcfg)
		log.Printf("rehearsald: chaos mode on (%s)", *chaos)
	}

	svc, err := service.New(cfg)
	if err != nil {
		log.Fatalf("rehearsald: %v", err)
	}
	srv := service.NewHTTPServer(*addr, svc.Handler())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("rehearsald: serving on %s (workers=%d queue=%d cache-dir=%q)",
		*addr, cfg.Workers, *queueDepth, *cacheDir)
	if node != nil {
		log.Printf("rehearsald: clustered as %s with %d member(s)", node.Self(), len(node.Members()))
	}

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		// Graceful drain: cancel queued and in-flight jobs first (they
		// finish in the canceled state), then close the listener so probes
		// and lifecycle queries keep answering while workers wind down.
		stop()
		log.Printf("rehearsald: draining")
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := svc.Shutdown(dctx); err != nil {
			log.Printf("rehearsald: %v", err)
		}
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("rehearsald: shutdown: %v", err)
		}
		log.Printf("rehearsald: stopped")
	}
}
