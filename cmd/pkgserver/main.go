// Command pkgserver serves package listings over HTTP in the standardized
// JSON format Rehearsal consumes — the counterpart of the paper's
// portable package-listing web service (section 6), which wrapped
// apt-file/repoquery running in containers and cached their output.
//
//	pkgserver -addr :8373
//
// Endpoints:
//
//	GET /v1/platforms
//	GET /v1/{platform}/packages
//	GET /v1/{platform}/package/{name}
//	GET /v1/{platform}/closure/{name}
//	GET /v1/{platform}/revdeps/{name}
//
// Point rehearsal at it with -pkg-server http://host:8373.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/pkgdb"
)

func main() {
	addr := flag.String("addr", ":8373", "listen address")
	flag.Parse()

	catalog := pkgdb.DefaultCatalog()
	srv := &http.Server{
		Addr:         *addr,
		Handler:      logRequests(pkgdb.Handler(catalog)),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	log.Printf("pkgserver: serving %v on %s", catalog.Platforms(), *addr)
	log.Fatal(srv.ListenAndServe())
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
