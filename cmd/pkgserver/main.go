// Command pkgserver serves package listings over HTTP in the standardized
// JSON format Rehearsal consumes — the counterpart of the paper's
// portable package-listing web service (section 6), which wrapped
// apt-file/repoquery running in containers and cached their output.
//
//	pkgserver -addr :8373
//
// Endpoints:
//
//	GET /v1/platforms
//	GET /v1/{platform}/packages
//	GET /v1/{platform}/package/{name}
//	GET /v1/{platform}/closure/{name}
//	GET /v1/{platform}/revdeps/{name}
//
// Point rehearsal at it with -pkg-server http://host:8373.
//
// Operational flags:
//
//   - -chaos injects deterministic faults (5xx bursts, connection aborts,
//     truncated and corrupted JSON bodies, latency) into responses, for
//     exercising the client's retry/fallback discipline end-to-end. The
//     spec format is internal/faults.ParseSpec, e.g.
//     "seed=42,rate=0.2,latency=10ms,kinds=status+reset+truncate+corrupt".
//   - -write-snapshot dumps the catalog to a snapshot file and exits;
//     rehearsal -snapshot consumes it as an offline fallback.
//
// The server itself is hardened: header/read/write/idle timeouts bound
// every connection phase, request bodies are size-capped, and SIGINT or
// SIGTERM drains in-flight requests before exiting instead of tearing
// them mid-response.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/pkgdb"
)

func main() {
	addr := flag.String("addr", ":8373", "listen address")
	chaos := flag.String("chaos", "", "fault-injection spec (testing only), e.g. seed=42,rate=0.2,kinds=status+reset+truncate+corrupt")
	writeSnapshot := flag.String("write-snapshot", "", "write the catalog snapshot to this file and exit (consumed by rehearsal -snapshot)")
	flag.Parse()

	catalog := pkgdb.DefaultCatalog()
	if *writeSnapshot != "" {
		if err := pkgdb.WriteSnapshotFile(catalog, *writeSnapshot); err != nil {
			log.Fatalf("pkgserver: %v", err)
		}
		log.Printf("pkgserver: wrote catalog snapshot to %s", *writeSnapshot)
		return
	}

	var handler http.Handler = pkgdb.Handler(catalog)
	if *chaos != "" {
		cfg, err := faults.ParseSpec(*chaos)
		if err != nil {
			log.Fatalf("pkgserver: -chaos: %v", err)
		}
		handler = faults.Middleware(faults.NewPlan(cfg), handler)
		log.Printf("pkgserver: chaos mode on (%s)", *chaos)
	}
	// The API is all GETs, so any sizeable request body is abuse: cap it
	// before it can buffer into the server.
	handler = http.MaxBytesHandler(logRequests(handler), 1<<20)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("pkgserver: serving %v on %s", catalog.Platforms(), *addr)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, drain in-flight requests for
		// up to 5s so a rolling restart never tears a response mid-body.
		stop()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("pkgserver: shutdown: %v", err)
		}
		log.Printf("pkgserver: stopped")
	}
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
