// Command experiments regenerates every table and figure of the paper's
// evaluation (section 6) against the benchmark suite:
//
//	experiments -fig 11a   paths per state, with and without pruning
//	experiments -fig 11b   determinacy time, pruning on vs off
//	experiments -fig 11c   determinacy time, commutativity on vs off
//	experiments -fig 12    idempotence-check time on verified manifests
//	experiments -fig 13    scalability with n mutually-conflicting packages
//	experiments -bugs      bug-finding summary ("Bugs found" paragraph)
//	experiments -parallel-bench [-parallel-out BENCH_parallel.json]
//	                       parallel-engine speedup at 1/2/4/8 workers
//	experiments -incremental-bench [-incremental-out BENCH_incremental.json]
//	                       incremental-backend speedup: fresh vs pooled solvers
//	experiments -interning-bench [-interning-out BENCH_interning.json]
//	                       hash-consed IR: encode memoization + disk verdict tier
//	experiments -diff-bench [-diff-out BENCH_diff.json]
//	                       differential verification: full re-check vs digest diff
//	experiments -cluster-bench [-cluster-out BENCH_cluster.json]
//	                       sharded rehearsald ring: warm jobs/sec at 1/2/4 nodes
//	experiments -sat-bench [-sat-out BENCH_sat.json]
//	                       portfolio SAT: cold-query p99, single vs k-way race
//	experiments            all of the above
//
// The -timeout flag stands in for the paper's 10-minute limit (default
// 10s: the deliberately-crippled configurations blow up factorially, so a
// small limit shows the same shape quickly). The data behind each table is
// computed by internal/experiments; EXPERIMENTS.md records paper-vs-
// measured shapes. -cpuprofile and -memprofile write pprof profiles of
// whatever subset of the experiments ran.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 11a, 11b, 11c, 12, 13 (default: all)")
	bugs := flag.Bool("bugs", false, "print the bug-finding summary only")
	parallelBench := flag.Bool("parallel-bench", false, "run the parallel-engine speedup experiment only")
	parallelOut := flag.String("parallel-out", "", "write the parallel speedup results as a JSON trajectory point (e.g. BENCH_parallel.json)")
	incrementalBench := flag.Bool("incremental-bench", false, "run the incremental-backend speedup experiment only")
	incrementalOut := flag.String("incremental-out", "", "write the incremental speedup results as a JSON trajectory point (e.g. BENCH_incremental.json)")
	interningBench := flag.Bool("interning-bench", false, "run the hash-consed-IR speedup experiment only")
	interningOut := flag.String("interning-out", "", "write the interning speedup results as a JSON trajectory point (e.g. BENCH_interning.json)")
	serviceBench := flag.Bool("service-bench", false, "run the rehearsald warm-substrate throughput experiment only")
	serviceOut := flag.String("service-out", "", "write the service throughput results as a JSON trajectory point (e.g. BENCH_service.json)")
	diffBench := flag.Bool("diff-bench", false, "run the differential-verification speedup experiment only")
	diffOut := flag.String("diff-out", "", "write the differential speedup results as a JSON trajectory point (e.g. BENCH_diff.json)")
	clusterBench := flag.Bool("cluster-bench", false, "run the sharded-cluster throughput experiment only")
	clusterOut := flag.String("cluster-out", "", "write the cluster throughput results as a JSON trajectory point (e.g. BENCH_cluster.json)")
	satBench := flag.Bool("sat-bench", false, "run the portfolio-SAT cold-query latency experiment only")
	satOut := flag.String("sat-out", "", "write the portfolio-SAT results as a JSON trajectory point (e.g. BENCH_sat.json)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	timeout := flag.Duration("timeout", 10*time.Second, "per-check timeout (paper: 10 minutes)")
	maxN := flag.Int("max-n", 6, "largest n for figure 13")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // report live allocations, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	switch {
	case *bugs:
		printBugs(*timeout)
	case *parallelBench:
		printParallel(*timeout, *parallelOut)
	case *incrementalBench:
		printIncremental(*timeout, *incrementalOut)
	case *interningBench:
		printInterning(*timeout, *interningOut)
	case *serviceBench:
		printService(*timeout, *serviceOut)
	case *diffBench:
		printDiff(*timeout, *diffOut)
	case *clusterBench:
		printCluster(*timeout, *clusterOut)
	case *satBench:
		printSat(*timeout, *satOut)
	case *fig == "":
		printFig11a(*timeout)
		printFig11b(*timeout)
		printFig11c(*timeout)
		printFig12(*timeout)
		printFig13(*timeout, *maxN)
		printBugs(*timeout)
		printParallel(*timeout, *parallelOut)
		printIncremental(*timeout, *incrementalOut)
		printInterning(*timeout, *interningOut)
		printService(*timeout, *serviceOut)
		printDiff(*timeout, *diffOut)
		printCluster(*timeout, *clusterOut)
		printSat(*timeout, *satOut)
	case *fig == "11a":
		printFig11a(*timeout)
	case *fig == "11b":
		printFig11b(*timeout)
	case *fig == "11c":
		printFig11c(*timeout)
	case *fig == "12":
		printFig12(*timeout)
	case *fig == "13":
		printFig13(*timeout, *maxN)
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	os.Exit(1)
}

func fmtTime(d time.Duration, timedOut bool) string {
	if timedOut {
		return "TIMEOUT"
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func printFig11a(timeout time.Duration) {
	rows, err := experiments.Fig11a(timeout)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Figure 11a: paths per state (pruned vs unpruned) ==")
	fmt.Printf("%-18s %10s %10s\n", "benchmark", "unpruned", "pruned")
	for _, r := range rows {
		if r.TimedOut {
			fmt.Printf("%-18s %10s %10s\n", r.Name, "-", "TIMEOUT")
			continue
		}
		fmt.Printf("%-18s %10d %10d\n", r.Name, r.Unpruned, r.Pruned)
	}
	fmt.Println()
}

func printTimeRows(title, offLabel, onLabel string, rows []experiments.TimeRow) {
	fmt.Println(title)
	fmt.Printf("%-18s %10s %10s\n", "benchmark", offLabel, onLabel)
	for _, r := range rows {
		fmt.Printf("%-18s %10s %10s\n", r.Name,
			fmtTime(r.Off, r.OffTimeout), fmtTime(r.On, r.OnTimeout))
	}
	fmt.Println()
}

func printFig11b(timeout time.Duration) {
	rows, err := experiments.Fig11b(timeout)
	if err != nil {
		fatal(err)
	}
	printTimeRows("== Figure 11b: determinacy time, pruning off vs on (commutativity on) ==",
		"no-prune", "prune", rows)
}

func printFig11c(timeout time.Duration) {
	rows, err := experiments.Fig11c(timeout)
	if err != nil {
		fatal(err)
	}
	printTimeRows("== Figure 11c: determinacy time, commutativity off vs on (pruning off) ==",
		"no-commut", "commut", rows)
}

func printFig12(timeout time.Duration) {
	rows, err := experiments.Fig12(timeout)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Figure 12: idempotence-check time (verified manifests) ==")
	fmt.Printf("%-18s %10s %12s\n", "benchmark", "time", "idempotent")
	for _, r := range rows {
		if r.TimedOut {
			fmt.Printf("%-18s %10s %12s\n", r.Name, "TIMEOUT", "-")
			continue
		}
		fmt.Printf("%-18s %10s %12v\n", r.Name, fmtTime(r.Time, false), r.Idempotent)
	}
	fmt.Println()
}

func printFig13(timeout time.Duration, maxN int) {
	rows, err := experiments.Fig13(timeout, maxN)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Figure 13: time vs number of conflicting resources ==")
	fmt.Printf("%4s %12s %12s\n", "n", "time", "sequences")
	for _, r := range rows {
		if r.TimedOut {
			fmt.Printf("%4d %12s %12s\n", r.N, "TIMEOUT", "-")
			continue
		}
		verdict := "det"
		if !r.Deterministic {
			verdict = "nondet"
		}
		fmt.Printf("%4d %12s %12d   (%s)\n", r.N, fmtTime(r.Time, false), r.Sequences, verdict)
	}
	fmt.Println()
}

// runBench is the shared harness behind every -*-bench flag: floor the
// figure timeout (the modeled series sleep real wall-clock time), build
// the report, print its table, and write the JSON trajectory point when
// an -*-out path was given. Each bench contributes only its builder and
// its table.
func runBench[T interface{ Write(string) error }](timeout, floor time.Duration, out string,
	build func(time.Duration) (T, error), print func(T)) {
	if timeout < floor {
		timeout = floor
	}
	rep, err := build(timeout)
	if err != nil {
		fatal(err)
	}
	print(rep)
	if out != "" {
		if err := rep.Write(out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", out)
	}
}

func printParallel(timeout time.Duration, out string) {
	// The modeled series sleeps 250ms per query; give the sequential run
	// enough headroom regardless of the figure timeout.
	runBench(timeout, time.Minute, out, func(t time.Duration) (*experiments.ParallelReport, error) {
		return experiments.BuildParallelReport(t, []int{1, 2, 4, 8})
	}, printParallelTable)
}

func printParallelTable(rep *experiments.ParallelReport) {
	fmt.Println("== Parallel determinacy engine: speedup vs workers ==")
	fmt.Printf("workload: %s (host CPUs: %d)\n", rep.Workload, rep.HostCPUs)
	fmt.Printf("%8s %14s %14s %10s %10s\n", "workers", "native", "modeled-z3", "queries", "hits")
	for i, r := range rep.Native {
		m := rep.ModeledZ3[i]
		fmt.Printf("%8d %14s %14s %10d %10d\n", r.Workers,
			fmtTime(r.Time, r.TimedOut), fmtTime(m.Time, m.TimedOut), r.Queries, r.CacheHits)
	}
	fmt.Printf("speedup at 4 workers: native %.2fx, modeled-z3 %.2fx\n\n",
		rep.NativeSpeedup4, rep.ModeledSpeedup4)
}

func printIncremental(timeout time.Duration, out string) {
	// The modeled fresh series sleeps 300ms per query; give the runs
	// headroom regardless of the figure timeout.
	runBench(timeout, time.Minute, out, experiments.BuildIncrementalReport, printIncrementalTable)
}

func printIncrementalTable(rep *experiments.IncrementalReport) {
	fmt.Println("== Incremental SMT backend: fresh vs pooled solvers ==")
	fmt.Printf("workload: %s (host CPUs: %d)\n", rep.Workload, rep.HostCPUs)
	fmt.Printf("%-12s %14s %14s %10s %8s %8s %8s\n",
		"mode", "native", "modeled-z3", "queries", "reuses", "learnt", "presimp")
	for i, r := range rep.Native {
		m := rep.ModeledZ3[i]
		fmt.Printf("%-12s %14s %14s %10d %8d %8d %8d\n", r.Mode,
			fmtTime(r.Time, r.TimedOut), fmtTime(m.Time, m.TimedOut),
			r.Queries, r.SolverReuses, r.LearntRetained, r.PreprocessRemoved)
	}
	fmt.Printf("warm-pool speedup over fresh: native %.2fx, modeled-z3 %.2fx (cold %.2fx)\n\n",
		rep.NativeWarmSpeedup, rep.ModeledWarmSpeedup, rep.ModeledColdSpeedup)
}

func printInterning(timeout time.Duration, out string) {
	// The modeled series sleep hundreds of milliseconds per cold query;
	// give the runs headroom regardless of the figure timeout.
	runBench(timeout, time.Minute, out, experiments.BuildInterningReport, printInterningTable)
}

func printInterningTable(rep *experiments.InterningReport) {
	fmt.Println("== Hash-consed IR: encode memoization + on-disk verdict tier ==")
	fmt.Printf("workload: %s (host CPUs: %d)\n", rep.Workload, rep.HostCPUs)
	fmt.Printf("%-14s %12s %10s %12s %12s %10s\n",
		"mode", "time", "queries", "intern-hits", "encode-memo", "disk-hits")
	for _, r := range append(append([]experiments.InterningRow{}, rep.Encode...), rep.Disk...) {
		fmt.Printf("%-14s %12s %10d %12d %12d %10d\n", r.Mode,
			fmtTime(r.Time, r.TimedOut), r.Queries, r.InternHits, r.EncodeMemoHits, r.DiskCacheHits)
	}
	fmt.Printf("encode speedup over fresh-plain: cold %.2fx, warm %.2fx; disk warm-start speedup: %.2fx\n",
		rep.EncodeColdSpeedup, rep.EncodeWarmSpeedup, rep.DiskWarmSpeedup)
	fmt.Printf("digest micro-series: %d exprs x %d passes, plain %.4fs vs interned %.4fs (%.0fx)\n\n",
		rep.Digest.Exprs, rep.Digest.Passes, rep.Digest.PlainSeconds, rep.Digest.InternedSeconds, rep.Digest.Speedup)
}

func printService(timeout time.Duration, out string) {
	runBench(timeout, time.Minute, out, experiments.BuildServiceReport, printServiceTable)
}

func printServiceTable(rep *experiments.ServiceReport) {
	fmt.Println("== rehearsald: warm-substrate service throughput ==")
	fmt.Printf("workload: %s (host CPUs: %d)\n", rep.Workload, rep.HostCPUs)
	fmt.Printf("%-8s %-10s %6s %10s %10s %10s %10s %8s %10s %8s\n",
		"workers", "round", "jobs", "time", "jobs/s", "p50", "p99", "queries", "cache-hits", "deduped")
	for _, r := range rep.Rows {
		fmt.Printf("%-8d %-10s %6d %9.3fs %10.1f %8.1fms %8.1fms %8d %10d %8d\n",
			r.Workers, r.Round, r.Jobs, r.Seconds, r.JobsPerSec,
			r.P50MS, r.P99MS, r.Queries, r.CacheHits, r.Deduped)
	}
	for _, s := range rep.Speedups {
		fmt.Printf("workers=%d: warm substrate %.2fx over cold, resubmission %.2fx over cold\n",
			s.Workers, s.WarmOverCold, s.ResubmitOverCold)
	}
	fmt.Println()
}

func printDiff(timeout time.Duration, out string) {
	// The synthetic full runs sleep 25ms per query across 190 queries at
	// one worker; give them headroom regardless of the figure timeout.
	runBench(timeout, 5*time.Minute, out, experiments.BuildDiffReport, printDiffTable)
}

func printDiffTable(rep *experiments.DiffReport) {
	fmt.Println("== Differential verification: full re-check vs digest-level diff ==")
	fmt.Printf("workload: %s (host CPUs: %d)\n", rep.Workload, rep.HostCPUs)
	fmt.Printf("%6s %6s %8s %10s %10s %8s %8s %8s %8s\n",
		"edit%", "edited", "workers", "full", "diff", "speedup", "reused", "resolved", "misses")
	for _, r := range rep.Synthetic {
		fmt.Printf("%6d %6d %8d %9.3fs %9.3fs %7.1fx %8d %8d %8d\n",
			r.EditPercent, r.EditedResources, r.Workers,
			r.FullSeconds, r.DiffSeconds, r.Speedup,
			r.PairsReused, r.PairsReverified, r.InheritMisses)
	}
	h := rep.Hosting
	fmt.Printf("hosting.pp one-resource edit (%d worker, %dms modeled z3): full %.3fs vs diff %.3fs = %.1fx (%d pairs inherited, %d solver queries)\n\n",
		h.Workers, h.ModeledLatencyMS, h.FullSeconds, h.DiffSeconds, h.Speedup, h.PairsReused, h.DiffQueries)
}

func printCluster(timeout time.Duration, out string) {
	runBench(timeout, time.Minute, out, func(t time.Duration) (*experiments.ClusterReport, error) {
		return experiments.BuildClusterReport(t, experiments.ClusterBenchConfig{})
	}, printClusterTable)
}

func printClusterTable(rep *experiments.ClusterReport) {
	fmt.Println("== Sharded cluster: warm jobs/sec vs node count ==")
	fmt.Printf("workload: %s (host CPUs: %d, seed %d)\n", rep.Workload, rep.HostCPUs, rep.Seed)
	fmt.Printf("%6s %-6s %6s %10s %10s %10s %10s %9s %12s\n",
		"nodes", "round", "jobs", "time", "jobs/s", "p50", "p99", "queries", "remote-hits")
	for _, r := range rep.Rows {
		fmt.Printf("%6d %-6s %6d %9.3fs %10.1f %8.1fms %8.1fms %9d %12d\n",
			r.Nodes, r.Round, r.Jobs, r.Seconds, r.JobsPerSec, r.P50MS, r.P99MS, r.Queries, r.RemoteHits)
	}
	for _, s := range rep.Scaling {
		fmt.Printf("nodes=%d: warm %.1f jobs/s (%.2fx over one node), ring %d hits / %d puts, %d jobs proxied to their owner\n",
			s.Nodes, s.WarmJobsPerSec, s.SpeedupOverOne, s.RingHits, s.RingPuts, s.RoutedProxied)
	}
	fmt.Printf("verdicts byte-identical across fleet sizes: %v\n\n", rep.VerdictsIdentical)
}

func printSat(timeout time.Duration, out string) {
	runBench(timeout, time.Minute, out, experiments.BuildSatReport, printSatTable)
}

func printSatTable(rep *experiments.SatReport) {
	fmt.Println("== Portfolio SAT: cold-query latency, single config vs k-way race ==")
	fmt.Printf("workload: %s (host CPUs: %d)\n", rep.Workload, rep.HostCPUs)
	fmt.Printf("configs: %v; escalation budget E=%d conflicts; %dus/conflict modeled, tail sigma %.1f\n",
		rep.Configs, rep.EscalateConflicts, rep.ModeledConflictLatencyUS, rep.TailSigma)
	fmt.Printf("%-10s %10s %10s %10s %10s\n", "series", "p50", "p90", "p99", "mean")
	for _, s := range []struct {
		name string
		d    experiments.SatSeries
	}{{"single", rep.Single}, {"k=2", rep.Portfolio2}, {"k=4", rep.Portfolio4}} {
		fmt.Printf("%-10s %8.1fms %8.1fms %8.1fms %8.1fms\n",
			s.name, s.d.P50MS, s.d.P90MS, s.d.P99MS, s.d.MeanMS)
	}
	fmt.Printf("p99 speedup: k=2 %.2fx, k=4 %.2fx (floor %.1fx); p50 at k=4 %.2fx\n",
		rep.P99Speedup2, rep.P99Speedup4, experiments.MinSatP99Speedup, rep.P50Speedup4)
	fmt.Printf("verdicts identical: %v, witnesses identical: %v; real k=4 race winners: %v\n",
		rep.VerdictsIdentical, rep.WitnessesIdentical, rep.RaceWinners)
	e := rep.Engine
	fmt.Printf("engine differential (%s, %d workers): single %.3fs vs portfolio %.3fs, %d escalations, %d races, report identical: %v\n\n",
		e.Manifest, e.Workers, e.SingleSeconds, e.PortfolioSeconds, e.Escalations, e.Races, e.ReportIdentical)
}

func printBugs(timeout time.Duration) {
	rows, err := experiments.Bugs(timeout)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Bugs found (section 6) ==")
	fmt.Printf("%-18s %14s %22s\n", "benchmark", "deterministic", "fix verifies (det+idem)")
	found := 0
	for _, r := range rows {
		switch {
		case r.TimedOut:
			fmt.Printf("%-18s %14s\n", r.Name, "TIMEOUT")
		case r.Deterministic:
			fmt.Printf("%-18s %14s %22s\n", r.Name, "yes", "-")
		default:
			found++
			verifies := "no"
			if r.FixVerifies {
				verifies = "yes"
			}
			fmt.Printf("%-18s %14s %22s\n", r.Name, "NO", verifies)
		}
	}
	fmt.Printf("\n%d of %d benchmarks have determinism bugs (paper: 6 of 13)\n\n", found, len(rows))
}
