// Pkgservice: run the package-listing web service (the paper's section-6
// infrastructure: a portable, caching front-end to apt-file/repoquery) and
// verify a manifest against it over HTTP, demonstrating that the analysis
// consumes only the standardized listing format.
//
//	go run ./examples/pkgservice
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/core"
	"repro/internal/pkgdb"
)

func main() {
	// Serve the catalog on an ephemeral local port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() {
		_ = http.Serve(ln, pkgdb.Handler(pkgdb.DefaultCatalog()))
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("package service listening at %s\n", base)

	client := pkgdb.NewClient(base, nil)

	// A direct query, like `rehearsal -pkg-server` would issue.
	pkg, err := client.Lookup("ubuntu", "nginx")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nginx %s: %d files, %d dirs, depends on %v\n",
		pkg.Version, len(pkg.Files), len(pkg.Dirs), pkg.Depends)

	// Verify a manifest with packages modeled through the service.
	opts := core.DefaultOptions()
	opts.Provider = client
	sys, err := core.Load(`
package {'nginx': ensure => present }
file {'/etc/nginx/nginx.conf':
  content => 'worker_processes 8;',
  require => Package['nginx'],
}
service {'nginx': ensure => running, subscribe => File['/etc/nginx/nginx.conf'] }
`, opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.CheckDeterminism()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic (packages fetched over HTTP): %v\n", res.Deterministic)

	// The client caches: a second verification does not re-fetch.
	sys2, err := core.Load(`package {'nginx': ensure => present }`, opts)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := sys2.CheckDeterminism()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second run (cached listings): %v\n", res2.Deterministic)
}
