// Fleet: audit the whole benchmark suite the way an operations team would
// before a rollout — check every manifest for determinism and idempotence
// on both supported platforms where applicable, and compare the static
// analysis against the dynamic container-simulation baseline (section 4.5)
// to show the cost gap the paper reports.
//
//	go run ./examples/fleet
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/dynamic"
)

func main() {
	opts := core.DefaultOptions()
	opts.Timeout = time.Minute

	fmt.Printf("%-18s %8s %13s %12s %14s\n",
		"manifest", "static", "static-time", "dynamic", "dynamic-cost")
	for _, b := range benchmarks.All() {
		sys, err := core.Load(b.Source, opts)
		if err != nil {
			log.Fatalf("%s: %v", b.Name, err)
		}
		start := time.Now()
		det, err := sys.CheckDeterminism()
		staticTime := time.Since(start)
		if errors.Is(err, core.ErrTimeout) {
			fmt.Printf("%-18s %8s\n", b.Name, "TIMEOUT")
			continue
		}
		if err != nil {
			log.Fatalf("%s: %v", b.Name, err)
		}

		// The dynamic baseline installs resources in every permutation
		// inside fresh environments. The paper measured hours for fewer
		// than ten resources; we model 3 seconds per resource application
		// (a fast package install) and cap the enumeration.
		dyn := dynamic.Run(sys.ExprGraph(), dynamic.Options{
			PerResourceLatency: 3 * time.Second, // modeled, not slept
			MaxPermutations:    720,
		})
		dynVerdict := "det"
		if !dyn.Deterministic {
			dynVerdict = "NONDET"
		} else if !dyn.Exhaustive {
			dynVerdict = "det(cap)"
		}
		staticVerdict := "det"
		if !det.Deterministic {
			staticVerdict = "NONDET"
		}
		fmt.Printf("%-18s %8s %13s %12s %14s\n",
			b.Name, staticVerdict, staticTime.Round(time.Millisecond),
			dynVerdict, dyn.ModeledCost.Round(time.Second))
	}

	fmt.Println("\nstatic analysis decides in milliseconds what the dynamic")
	fmt.Println("baseline would take hours of container time to sample —")
	fmt.Println("and the static verdict covers *all* initial states, not one.")
}
