// Webserver: the paper's figure-3a scenario — installing Apache and
// overwriting its default site configuration. Shows the missing-dependency
// bug being detected, the counterexample, the fix verifying, and a file
// invariant proving the site config always ends up with the intended
// contents.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/fs"
)

const siteConfig = "<VirtualHost *:80>\n  DocumentRoot /srv/www\n</VirtualHost>\n"

var broken = `
file {'/etc/apache2/sites-available/000-default.conf':
  content => '` + siteConfig + `',
}
package {'apache2': ensure => present }
service {'apache2':
  ensure    => running,
  subscribe => File['/etc/apache2/sites-available/000-default.conf'],
}
`

var repaired = broken + `
Package['apache2'] -> File['/etc/apache2/sites-available/000-default.conf']
`

func main() {
	fmt.Println("=== figure 3a: package and config file without a dependency ===")
	sys, err := core.Load(broken, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	det, err := sys.CheckDeterminism()
	if err != nil {
		log.Fatal(err)
	}
	if det.Deterministic {
		log.Fatal("expected the bug to be detected")
	}
	cex := det.Counterexample
	fmt.Println("non-deterministic, as the paper describes:")
	fmt.Printf("  order A: %s\n           -> %s\n", strings.Join(cex.Order1, ", "), render(cex.Ok1))
	fmt.Printf("  order B: %s\n           -> %s\n", strings.Join(cex.Order2, ", "), render(cex.Ok2))
	fmt.Printf("  (the config file cannot be created before the package creates %s)\n\n",
		"/etc/apache2/sites-available")

	fmt.Println("=== with Package['apache2'] -> File[...] ===")
	sys, err = core.Load(repaired, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	det, err = sys.CheckDeterminism()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic: %v\n", det.Deterministic)

	idem, err := sys.CheckIdempotence()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("idempotent: %v\n", idem.Idempotent)

	// Section 5 invariant: whenever the manifest succeeds, the site config
	// holds exactly our contents (no other resource overwrites it).
	inv, err := sys.CheckFileInvariant(
		fs.Path("/etc/apache2/sites-available/000-default.conf"), siteConfig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("invariant (site config has our contents on success): %v\n", inv.Holds)
}

func render(ok bool) string {
	if ok {
		return "success"
	}
	return "error"
}
