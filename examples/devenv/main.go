// Devenv: two scenarios from section 2.2 of the paper —
//
//  1. figure 3b: C++ and OCaml development modules whose authors added
//     false dependencies in opposite orders; composing them yields a
//     dependency cycle, which Rehearsal reports with the resources
//     involved;
//
//  2. figure 3c: removing Perl while installing Go (which depends on Perl
//     on Ubuntu 14.04) — a silent failure: two different success states
//     without any error, and after ordering, a non-idempotent manifest.
//
//     go run ./examples/devenv
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fs"
)

const fig3b = `
define cpp() {
  if !defined(Package['m4'])   { package{'m4': ensure => present } }
  if !defined(Package['make']) { package{'make': ensure => present } }
  package{'gcc': ensure => present }
  Package['m4'] -> Package['make']
  Package['make'] -> Package['gcc']
}
define ocaml() {
  if !defined(Package['make']) { package{'make': ensure => present } }
  if !defined(Package['m4'])   { package{'m4': ensure => present } }
  package{'ocaml': ensure => present }
  Package['make'] -> Package['m4']
  Package['m4'] -> Package['ocaml']
}
cpp{'workstation': }
ocaml{'workstation': }
`

const fig3c = `
package{'golang-go': ensure => present }
package{'perl': ensure => absent }
`

const fig3cOrdered = fig3c + `
Package['perl'] -> Package['golang-go']
`

func main() {
	fmt.Println("=== figure 3b: over-constrained modules cannot compose ===")
	if _, err := core.Load(fig3b, core.DefaultOptions()); err != nil {
		fmt.Printf("rejected as expected:\n  %v\n\n", err)
	} else {
		log.Fatal("expected a dependency cycle")
	}

	fmt.Println("=== figure 3c: remove perl + install golang-go (unordered) ===")
	sys, err := core.Load(fig3c, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	det, err := sys.CheckDeterminism()
	if err != nil {
		log.Fatal(err)
	}
	if det.Deterministic {
		log.Fatal("expected the silent failure to be detected")
	}
	cex := det.Counterexample
	fmt.Println("silent failure detected: two different outcomes")
	fmt.Printf("  order A %v:\n    %s\n", cex.Order1, summarize(cex.Ok1, cex.Out1))
	fmt.Printf("  order B %v:\n    %s\n\n", cex.Order2, summarize(cex.Ok2, cex.Out2))

	fmt.Println("=== figure 3c with Package['perl'] -> Package['golang-go'] ===")
	sys, err = core.Load(fig3cOrdered, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	det, err = sys.CheckDeterminism()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic: %v\n", det.Deterministic)
	idem, err := sys.CheckIdempotence()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("idempotent: %v — the manifest is fundamentally inconsistent\n", idem.Idempotent)
	fmt.Println("  (a system cannot have perl removed and golang-go installed;")
	fmt.Println("   the paper argues such manifests should be rejected)")
}

// summarize reports whether perl/golang markers are present rather than
// dumping hundreds of files.
func summarize(ok bool, st fs.State) string {
	if !ok {
		return "error"
	}
	has := func(pkg string) string {
		if st.IsFile(fs.Path("/var/lib/pkgdb/" + pkg)) {
			return "installed"
		}
		return "absent"
	}
	return fmt.Sprintf("success: golang-go %s, perl %s", has("golang-go"), has("perl"))
}
