// Quickstart: load a small Puppet manifest, check determinism and
// idempotence, and print the counterexample for the buggy variant — the
// intro example of the paper (section 1).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/fs"
)

const buggy = `
package{'vim': ensure => present }
file{'/home/carol/.vimrc': content => 'syntax on' }
user{'carol': ensure => present, managehome => true }
`

const fixed = buggy + `
User['carol'] -> File['/home/carol/.vimrc']
`

func main() {
	fmt.Println("--- buggy manifest (no dependency between user and file) ---")
	verify(buggy)
	fmt.Println()
	fmt.Println("--- fixed manifest (User['carol'] -> File['.vimrc']) ---")
	verify(fixed)
}

func verify(src string) {
	sys, err := core.Load(src, core.DefaultOptions())
	if err != nil {
		log.Fatalf("load: %v", err)
	}
	fmt.Printf("resources: %s\n", strings.Join(sys.ResourceNames(), ", "))

	det, err := sys.CheckDeterminism()
	if err != nil {
		log.Fatalf("determinism: %v", err)
	}
	if det.Deterministic {
		fmt.Println("determinism: OK")
	} else {
		cex := det.Counterexample
		fmt.Println("determinism: FAIL")
		fmt.Printf("  from initial state %s:\n", fs.StateString(cex.Input))
		fmt.Printf("  order %v -> %s\n", cex.Order1, outcome(cex.Ok1))
		fmt.Printf("  order %v -> %s\n", cex.Order2, outcome(cex.Ok2))
		return
	}

	idem, err := sys.CheckIdempotence()
	if err != nil {
		log.Fatalf("idempotence: %v", err)
	}
	if idem.Idempotent {
		fmt.Println("idempotence: OK")
	} else {
		fmt.Printf("idempotence: FAIL\n  %s\n", idem.Counterexample)
	}
}

func outcome(ok bool) string {
	if ok {
		return "success"
	}
	return "error"
}
